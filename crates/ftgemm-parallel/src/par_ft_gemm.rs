//! Parallel fault-tolerant GEMM — the paper's Fig. 1 algorithm.
//!
//! Synchronization structure per depth panel (`pc`):
//!
//! ```text
//! [all]  cooperative fused pack of B~ (N-partition): B~, bc partials,
//!        enc_col updates on the packer's own column chunk
//! ---- barrier ----
//! [t0]   reduce bc partials  ("extra stage of reduction ... B_c", §2.3)
//! ---- barrier ----
//! [all]  own-rows compute: fused pack A~ (enc_row update), macro kernels
//!        (ref_row slice + ref_col partial lane), fault injection sites
//! ---- barrier ----
//! [t0]   reduce ref_col lanes; verify enc vs ref (rows + cols); locate,
//!        correct, or flag unrecoverable   ("p-loop: verify")
//! ---- barrier ----
//! [all]  observe verdict; continue or abort
//! ```
//!
//! Row checksums live in each thread's M-slice (disjoint writes into shared
//! vectors); column checksums cross thread boundaries and go through
//! sharded-lane reductions.

// analyze::policy(publish: abort as par_abort)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// `abort` publishes an unrecoverable-fault verdict across workers —
// Release store next to the verdict write, Acquire load after the
// barrier. `correction_scale` stays Relaxed: it is a monotonic hint
// re-derived every panel, never a synchronization point.

use crate::ctx::ParGemmContext;
use crate::shared::SendPtr;
use crate::workspace::ParFtWorkspace;
use ftgemm_abft::corrector::{self, CorrectionOutcome};
use ftgemm_abft::{checksum, FtConfig, FtError, FtReport, FtResult};
use ftgemm_core::gemm::validate_shapes;
use ftgemm_core::macro_kernel::macro_kernel;
use ftgemm_core::{pack, MatMut, MatRef, Scalar};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Parallel fault-tolerant `C = alpha*A*B + beta*C` with a fresh workspace.
pub fn par_ft_gemm<T: Scalar>(
    ctx: &ParGemmContext<T>,
    cfg: &FtConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    validate_shapes(a, b, c)?;
    ctx.params.validate().map_err(FtError::Core)?;
    let mut ws = ParFtWorkspace::for_problem(ctx, a.nrows(), b.ncols(), a.ncols());
    par_ft_gemm_with_ws(ctx, &mut ws, cfg, alpha, a, b, beta, c)
}

/// Parallel fault-tolerant GEMM reusing a caller-held [`ParFtWorkspace`].
///
/// The hot path performs no heap allocation: every shared vector, reduction
/// lane, and per-thread packed buffer lives in `ws`. Callers that replay one
/// problem shape (the facade's `GemmPlan`, serving layers) build the
/// workspace once and amortize it across calls.
///
/// The workspace is taken `&mut` even though the region internally shares
/// it across pool threads: the exclusive borrow is what makes it
/// impossible for *two* concurrent calls (e.g. on two different pools) to
/// alias one workspace from safe code.
///
/// # Panics
/// If `ws` was built for a smaller problem or a different thread count
/// (see [`ParFtWorkspace::fits`]).
pub fn par_ft_gemm_with_ws<T: Scalar>(
    ctx: &ParGemmContext<T>,
    ws: &mut ParFtWorkspace<T>,
    cfg: &FtConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    let (m, n, k) = validate_shapes(a, b, c)?;
    let p = ctx.params;
    p.validate().map_err(FtError::Core)?;

    if m == 0 || n == 0 {
        return Ok(FtReport::default());
    }
    if k == 0 || alpha == T::ZERO {
        ftgemm_core::gemm::scale_c(c, beta);
        return Ok(FtReport::default());
    }

    let kernel = ctx.kernel;
    let nthreads = ctx.nthreads();
    let b_len = p.packed_b_len();
    // Downgrade to a shared borrow for the region closure (which every pool
    // thread runs); exclusivity was enforced by the `&mut` signature above.
    let ws: &ParFtWorkspace<T> = ws;
    assert!(
        ws.fits(ctx, m, n, k),
        "workspace too small for {m}x{n}x{k} on {nthreads} threads"
    );

    // Shared state lives in the caller's workspace (see the module docs and
    // `workspace.rs` for the access discipline; every region read below is
    // rewritten first, so cross-call reuse needs no re-zeroing).
    let btilde = &ws.btilde;
    let ar_full = &ws.ar_full;
    let bc_reduced = &ws.bc_reduced;
    let enc_row = &ws.enc_row;
    let ref_row = &ws.ref_row;
    let enc_col = &ws.enc_col;
    let ref_col = &ws.ref_col;
    let enc_col_shards = &ws.enc_col_shards;
    let bc_shards = &ws.bc_shards;
    let ref_col_shards = &ws.ref_col_shards;

    let abort = AtomicBool::new(false);
    let verdict: Mutex<Option<FtError>> = Mutex::new(None);
    let report: Mutex<FtReport> = Mutex::new(FtReport::default());
    // Threshold inflation after corrections (see serial driver): f64 bits.
    let correction_scale = AtomicU64::new(0f64.to_bits());

    let c_ptr = SendPtr(c.as_mut_ptr());
    let ldc = c.ld();
    let call_nonce: u64 = rand_nonce();

    ctx.pool().run(|w| {
        // Capture the SendPtr wrapper itself, not its raw field (auto-capture
        // of `c_ptr.0` would capture the non-Send raw pointer).
        #[allow(clippy::redundant_locals)]
        let c_ptr = c_ptr;
        let rows = w.partition(m, p.mr);
        let (ms, mlen) = (rows.start, rows.len());
        let tid = w.tid;

        // Thread-private packed A~ from the workspace (slot `tid` is only
        // ever locked by this thread inside a region — uncontended).
        let mut atilde = ws.atilde[tid].lock();
        let mut local_report = FtReport::default();

        // Injection stream per thread (sites = this thread's macro calls).
        let my_sites = n.div_ceil(p.nc) * k.div_ceil(p.kc) * mlen.div_ceil(p.mc).max(1);
        let mut stream = cfg
            .injector
            .as_ref()
            .map(|inj| inj.stream(call_nonce ^ (tid as u64) << 32, my_sites));

        // A_r = alpha * e^T A, partitioned along K so writes are disjoint
        // and no reduction is needed.
        {
            let cols = w.partition(k, 1);
            if !cols.is_empty() {
                let a_cols = a.submatrix(0, cols.start, m, cols.len());
                // SAFETY: disjoint k-ranges across threads.
                let out = unsafe { ar_full.slice_mut(cols.clone()) };
                pack::col_sums_scaled(&a_cols, alpha, out);
            }
        }
        w.barrier();

        let mut jc = 0;
        'jc_loop: while jc < n {
            let nc_eff = p.nc.min(n - jc);

            // beta-scale + initial encode: rows are local, columns go via
            // lanes and a reduction.
            {
                // SAFETY: each thread writes only its own lane pre-barrier.
                let lane = unsafe { enc_col_shards.lane_mut(tid) };
                lane[..nc_eff].fill(T::ZERO);
                if mlen > 0 {
                    // SAFETY: disjoint row slices.
                    let mut c_slice = unsafe {
                        MatMut::<T>::from_raw_parts(
                            c_ptr.0.add(ms + jc * ldc),
                            mlen,
                            nc_eff,
                            ldc,
                        )
                    };
                    // SAFETY: disjoint row range of enc_row.
                    let enc_row_slice = unsafe { enc_row.slice_mut(ms..ms + mlen) };
                    if cfg.fusion.fuse_c_scale {
                        checksum::scale_encode_c(
                            &mut c_slice,
                            beta,
                            enc_row_slice,
                            &mut lane[..nc_eff],
                        );
                    } else {
                        checksum::scale_then_encode_c(
                            &mut c_slice,
                            beta,
                            enc_row_slice,
                            &mut lane[..nc_eff],
                        );
                    }
                }
            }
            w.barrier();
            if tid == 0 {
                // SAFETY: reduction epoch, lanes quiescent.
                let out = unsafe { enc_col.slice_mut(0..nc_eff) };
                enc_col_shards.reduce_into_prefix(out, |x, y| x + y);
                correction_scale.store(0f64.to_bits(), Ordering::Relaxed);
            }
            w.barrier();

            let mut pc = 0;
            while pc < k {
                let kc_eff = p.kc.min(k - pc);

                // Zero the per-panel accumulators this thread owns.
                {
                    // SAFETY: own lane / own row range, pre-barrier epoch.
                    unsafe {
                        bc_shards.lane_mut(tid)[..kc_eff].fill(T::ZERO);
                        ref_col_shards.lane_mut(tid)[..nc_eff].fill(T::ZERO);
                        if mlen > 0 {
                            ref_row.slice_mut(ms..ms + mlen).fill(T::ZERO);
                        }
                    }
                }

                // Cooperative fused packing of B~ along N.
                {
                    let cols = w.partition(nc_eff, p.nr);
                    if !cols.is_empty() {
                        let b_block = b.submatrix(pc, jc + cols.start, kc_eff, cols.len());
                        let off = (cols.start / p.nr) * p.nr * kc_eff;
                        let len = cols.len().div_ceil(p.nr) * p.nr * kc_eff;
                        // SAFETY: NR-aligned chunks -> disjoint packed slabs;
                        // enc_col written at this thread's column chunk only.
                        unsafe {
                            let out = btilde.slice_mut(off..off + len);
                            let ar_slice = ar_full.slice(pc..pc + kc_eff);
                            let enc_col_chunk =
                                enc_col.slice_mut(cols.start..cols.start + cols.len());
                            let bc_lane = &mut bc_shards.lane_mut(tid)[..kc_eff];
                            if cfg.fusion.fuse_b_pack {
                                pack::pack_b_fused(
                                    &b_block, p.nr, out, ar_slice, bc_lane, enc_col_chunk,
                                );
                            } else {
                                pack::pack_b(&b_block, p.nr, out);
                                checksum::encode_bc(&b_block, bc_lane);
                                checksum::accumulate_enc_col(&b_block, ar_slice, enc_col_chunk);
                            }
                        }
                    }
                }
                w.barrier();
                if tid == 0 {
                    // The paper's "extra stage of reduction" for B_c.
                    // SAFETY: reduction epoch.
                    let out = unsafe { bc_reduced.slice_mut(0..kc_eff) };
                    bc_shards.reduce_into_prefix(out, |x, y| x + y);
                }
                w.barrier();

                // Own-rows compute with fused checksums.
                if mlen > 0 {
                    // SAFETY: read-only epochs for btilde/bc_reduced; own
                    // lane for ref_col; own row ranges for enc/ref rows.
                    let b_packed = unsafe { btilde.slice(0..b_len) };
                    let bc_r = unsafe { bc_reduced.slice(0..kc_eff) };
                    let ref_col_lane = unsafe { ref_col_shards.lane_mut(tid) };
                    let mut ic = 0;
                    while ic < mlen {
                        let mc_eff = p.mc.min(mlen - ic);
                        let a_block = a.submatrix(ms + ic, pc, mc_eff, kc_eff);
                        // SAFETY: own row range.
                        let enc_row_slice =
                            unsafe { enc_row.slice_mut(ms + ic..ms + ic + mc_eff) };
                        if cfg.fusion.fuse_a_pack {
                            pack::pack_a_fused(
                                &a_block,
                                alpha,
                                p.mr,
                                atilde.as_mut_slice(),
                                bc_r,
                                enc_row_slice,
                            );
                        } else {
                            pack::pack_a(&a_block, alpha, p.mr, atilde.as_mut_slice());
                            checksum::accumulate_enc_row(&a_block, alpha, bc_r, enc_row_slice);
                        }

                        // SAFETY: disjoint row slice of C.
                        let mut c_block = unsafe {
                            MatMut::<T>::from_raw_parts(
                                c_ptr.0.add(ms + ic + jc * ldc),
                                mc_eff,
                                nc_eff,
                                ldc,
                            )
                        };
                        // SAFETY: own row range of ref_row.
                        let ref_row_slice =
                            unsafe { ref_row.slice_mut(ms + ic..ms + ic + mc_eff) };
                        macro_kernel(
                            &kernel,
                            kc_eff,
                            atilde.as_slice(),
                            b_packed,
                            &mut c_block,
                            Some((&mut ref_col_lane[..nc_eff], ref_row_slice)),
                        );

                        // Source-level injection: corrupt one element as a
                        // faulty FMA would (references see it, encodes do
                        // not).
                        if let Some(stream) = stream.as_mut() {
                            if let Some(event) = stream.poll() {
                                local_report.injected += 1;
                                let lane = event.lane;
                                let i_loc = (lane % mc_eff as u64) as usize;
                                let j_loc = ((lane / mc_eff as u64) % nc_eff as u64) as usize;
                                let old = c_block.get(i_loc, j_loc);
                                let new = T::from_f64(event.apply_f64(old.to_f64()));
                                c_block.set(i_loc, j_loc, new);
                                let delta = new - old;
                                ref_col_lane[j_loc] += delta;
                                // SAFETY: own row element.
                                unsafe {
                                    ref_row.slice_mut(
                                        ms + ic + i_loc..ms + ic + i_loc + 1,
                                    )[0] += delta;
                                }
                            }
                        }
                        ic += p.mc;
                    }
                }
                w.barrier();

                // Centralized verification & correction on thread 0
                // (others are parked at the next barrier, so exclusive
                // access to C and the checksum vectors is guaranteed).
                if tid == 0 {
                    // SAFETY: exclusive verification epoch.
                    let out = unsafe { ref_col.slice_mut(0..nc_eff) };
                    ref_col_shards.reduce_into_prefix(out, |x, y| x + y);

                    let enc_row_all = unsafe { enc_row.slice(0..m) };
                    let ref_row_all = unsafe { ref_row.slice(0..m) };
                    let enc_col_all = unsafe { enc_col.slice(0..nc_eff) };
                    let ref_col_all = unsafe { ref_col.slice(0..nc_eff) };

                    let mut rep = report.lock();
                    rep.verifications += 1;
                    let k_done = pc + kc_eff;
                    let cscale =
                        T::from_f64(f64::from_bits(correction_scale.load(Ordering::Relaxed)));
                    // Encoded checksums only (clean inputs); corrupted
                    // references must not inflate the threshold and mask
                    // smaller concurrent errors.
                    let scale = max_abs(enc_row_all).max(max_abs(enc_col_all)).max(cscale);
                    let th_row = cfg.tolerance.threshold::<T>(k_done, nc_eff, scale);
                    let th_col = cfg.tolerance.threshold::<T>(k_done, m, scale);
                    let row_diffs =
                        corrector::find_discrepancies(enc_row_all, ref_row_all, th_row);
                    let col_diffs =
                        corrector::find_discrepancies(enc_col_all, ref_col_all, th_col);
                    if std::env::var("FTGEMM_DEBUG_VERIFY").is_ok() {
                        eprintln!("verify jc={jc} pc={pc}: rows={} cols={} th_row={th_row:?} th_col={th_col:?} scale={scale:?}",
                            row_diffs.len(), col_diffs.len());
                        for d in &row_diffs { eprintln!("  row {} delta {:?}", d.idx, d.delta); }
                        for d in &col_diffs { eprintln!("  col {} delta {:?}", d.idx, d.delta); }
                    }
                    if !row_diffs.is_empty() || !col_diffs.is_empty() {
                        let worst = row_diffs
                            .iter()
                            .chain(col_diffs.iter())
                            .fold(cscale, |acc, d| acc.max(d.delta.abs()));
                        correction_scale.store(worst.to_f64().to_bits(), Ordering::Relaxed);
                        // SAFETY: exclusive access to the whole block here.
                        let mut c_block = unsafe {
                            MatMut::<T>::from_raw_parts(
                                c_ptr.0.add(jc * ldc),
                                m,
                                nc_eff,
                                ldc,
                            )
                        };
                        let th = th_row.max(th_col);
                        match corrector::correct_block(&mut c_block, &row_diffs, &col_diffs, th)
                        {
                            CorrectionOutcome::Clean => {}
                            CorrectionOutcome::Corrected { count } => {
                                rep.detected += count;
                                rep.corrected += count;
                                if let Some(inj) = cfg.injector.as_ref() {
                                    for _ in 0..count {
                                        inj.stats().record_detected();
                                        inj.stats().record_corrected();
                                    }
                                }
                            }
                            CorrectionOutcome::Unrecoverable { detail } => {
                                if let Some(inj) = cfg.injector.as_ref() {
                                    inj.stats().record_unrecoverable();
                                }
                                // analyze::allow(lock-order, "verdict guard is a statement temporary, dropped before report is re-locked")
                                *verdict.lock() =
                                    Some(FtError::Unrecoverable { jc, pc, detail });
                                abort.store(true, Ordering::Release);
                            }
                        }
                    }
                }
                w.barrier();
                if abort.load(Ordering::Acquire) {
                    break 'jc_loop;
                }
                pc += p.kc;
            }
            jc += p.nc;
        }

        report.lock().absorb(FtReport {
            injected: local_report.injected,
            ..FtReport::default()
        });
    });

    let merged = report.into_inner();
    merged.publish_global();
    if let Some(err) = verdict.into_inner() {
        return Err(err);
    }
    Ok(merged)
}

fn max_abs<T: Scalar>(s: &[T]) -> T {
    s.iter().fold(T::ZERO, |acc, &x| acc.max(x.abs()))
}

/// Cheap per-call nonce for injection stream separation (not security RNG).
fn rand_nonce() -> u64 {
    use std::sync::atomic::AtomicU64 as A;
    static COUNTER: A = A::new(0x5EED);
    COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;
    use ftgemm_faults::{ErrorModel, FaultInjector, Rate};

    fn check_clean(threads: usize, m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        let cfg = FtConfig::default();
        let a = Matrix::<f64>::random(m, k, 91);
        let b = Matrix::<f64>::random(k, n, 92);
        let mut c = Matrix::<f64>::random(m, n, 93);
        let mut c_ref = c.clone();
        let rep = par_ft_gemm(
            &ctx,
            &cfg,
            alpha,
            &a.as_ref(),
            &b.as_ref(),
            beta,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_ref.as_mut());
        let d = c.rel_max_diff(&c_ref);
        assert!(d < 1e-10, "diff {d} (t={threads} {m}x{n}x{k})");
        assert_eq!(rep.detected, 0, "false positive (t={threads} {m}x{n}x{k})");
        assert!(rep.verifications > 0);
    }

    #[test]
    fn clean_various_threads() {
        for t in [1, 2, 4, 8] {
            check_clean(t, 96, 80, 64, 1.0, 1.0);
        }
    }

    #[test]
    fn clean_ragged_and_alpha_beta() {
        check_clean(4, 131, 73, 59, -0.5, 2.0);
        check_clean(3, 17, 200, 33, 1.0, 0.0);
        check_clean(5, 300, 5, 40, 0.25, 1.0);
    }

    #[test]
    fn unfused_parallel_matches() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let cfg = FtConfig::unfused();
        let a = Matrix::<f64>::random(90, 70, 1);
        let b = Matrix::<f64>::random(70, 60, 2);
        let mut c = Matrix::<f64>::random(90, 60, 3);
        let mut c_ref = c.clone();
        let rep = par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
        assert_eq!(rep.detected, 0);
    }

    #[test]
    fn injected_errors_corrected_parallel() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let inj = FaultInjector::new(17, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(2));
        let cfg = FtConfig::with_injector(inj.clone());
        let a = Matrix::<f64>::random(128, 96, 4);
        let b = Matrix::<f64>::random(96, 112, 5);
        let mut c = Matrix::<f64>::zeros(128, 112);
        let mut c_ref = Matrix::<f64>::zeros(128, 112);
        let rep = par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(rep.injected > 0, "{rep:?}");
        assert_eq!(rep.corrected, rep.injected, "{rep:?}");
        assert!(
            c.rel_max_diff(&c_ref) < 1e-9,
            "diff {} rep {rep:?}",
            c.rel_max_diff(&c_ref)
        );
    }

    #[test]
    fn bitflips_corrected_parallel() {
        let ctx = ParGemmContext::<f64>::with_threads(6);
        // Six threads inject one bitflip each into the same verification
        // interval. Bitflip deltas are near powers of two, so some seeds
        // produce two errors of (numerically) equal magnitude — a pattern
        // row+column checksums cannot disambiguate (see
        // corrector::tests::equal_delta_errors_distinct_positions). The seed
        // is chosen so all six deltas are distinct.
        let inj = FaultInjector::new(42, ErrorModel::BitFlip { bit: None }, Rate::Count(1));
        let cfg = FtConfig::with_injector(inj);
        let a = Matrix::<f64>::random(150, 90, 6);
        let b = Matrix::<f64>::random(90, 100, 7);
        let mut c = Matrix::<f64>::zeros(150, 100);
        let mut c_ref = Matrix::<f64>::zeros(150, 100);
        let rep = par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(rep.injected >= 1);
        assert!(c.rel_max_diff(&c_ref) < 1e-9, "rep {rep:?}");
    }

    #[test]
    fn ambiguous_bitflip_pattern_never_silently_corrupts() {
        // Seed 23 makes two of the six simultaneous bitflips land with
        // numerically equal deltas in distinct rows/columns — the pairing
        // the corrector cannot disambiguate. The contract is fail-stop:
        // either every error is located and the result is clean, or the
        // call errs Unrecoverable ("ambiguous pairing"). What must never
        // happen is Ok with a wrong result.
        let ctx = ParGemmContext::<f64>::with_threads(6);
        let inj = FaultInjector::new(23, ErrorModel::BitFlip { bit: None }, Rate::Count(1));
        let cfg = FtConfig::with_injector(inj);
        let a = Matrix::<f64>::random(150, 90, 6);
        let b = Matrix::<f64>::random(90, 100, 7);
        let mut c = Matrix::<f64>::zeros(150, 100);
        let mut c_ref = Matrix::<f64>::zeros(150, 100);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        match par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        ) {
            Ok(rep) => {
                assert!(
                    c.rel_max_diff(&c_ref) < 1e-9,
                    "silent corruption: diff {} rep {rep:?}",
                    c.rel_max_diff(&c_ref)
                );
            }
            Err(FtError::Unrecoverable { detail, .. }) => {
                assert!(detail.contains("ambiguous"), "detail: {detail}");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn f32_parallel_ft() {
        let ctx = ParGemmContext::<f32>::with_threads(3);
        let cfg = FtConfig::default();
        let a = Matrix::<f32>::random(64, 48, 8);
        let b = Matrix::<f32>::random(48, 56, 9);
        let mut c = Matrix::<f32>::zeros(64, 56);
        let mut c_ref = Matrix::<f32>::zeros(64, 56);
        let rep = par_ft_gemm(
            &ctx,
            &cfg,
            1.0f32,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0f32, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-4);
        assert_eq!(rep.detected, 0);
    }

    #[test]
    fn workspace_reuse_bitmatches_fresh() {
        // Replaying one shape through a shared ParFtWorkspace must produce
        // bit-identical results to per-call fresh workspaces (same compute
        // order), without the workspace buffers moving.
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let cfg = FtConfig::default();
        let mut ws = ParFtWorkspace::for_problem(&ctx, 96, 80, 64);
        let addr = ws.base_addr();
        for seed in 0..3u64 {
            let a = Matrix::<f64>::random(96, 64, seed);
            let b = Matrix::<f64>::random(64, 80, seed + 10);
            let mut c = Matrix::<f64>::random(96, 80, seed + 20);
            let mut c_fresh = c.clone();
            let rep = par_ft_gemm_with_ws(
                &ctx,
                &mut ws,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
            par_ft_gemm(
                &ctx,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c_fresh.as_mut(),
            )
            .unwrap();
            assert_eq!(c.as_slice(), c_fresh.as_slice(), "seed {seed}");
            assert_eq!(rep.detected, 0);
        }
        assert_eq!(ws.base_addr(), addr, "workspace must not reallocate");
    }

    #[test]
    fn repeated_calls_shared_ctx() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let cfg = FtConfig::default();
        for s in [40usize, 96, 60] {
            let a = Matrix::<f64>::random(s, s, s as u64);
            let b = Matrix::<f64>::random(s, s, s as u64 + 1);
            let mut c = Matrix::<f64>::zeros(s, s);
            let mut c_ref = Matrix::<f64>::zeros(s, s);
            par_ft_gemm(
                &ctx,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                0.0,
                &mut c.as_mut(),
            )
            .unwrap();
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "size {s}");
        }
    }

    #[test]
    fn degenerate_dims_parallel() {
        let ctx = ParGemmContext::<f64>::with_threads(2);
        let cfg = FtConfig::default();
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let mut c = Matrix::<f64>::filled(2, 2, 8.0);
        par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.5,
            &mut c.as_mut(),
        )
        .unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 4.0));
    }
}
