//! Reusable workspace for the matrix-parallel drivers.
//!
//! [`par_ft_gemm`](crate::par_ft_gemm) historically allocated its shared
//! state (the packed `B~`, the checksum vectors, the per-thread reduction
//! lanes, each thread's private `A~`) on every call. That is fine for one
//! large GEMM, but a plan-once/execute-many caller — the facade's
//! `GemmPlan`, or a service replaying one shape under load — pays the
//! allocator on a hot path for buffers whose sizes never change.
//!
//! [`ParFtWorkspace`] hoists all of that state into a value the caller owns:
//! build it once per problem shape ([`ParFtWorkspace::for_problem`]), then
//! hand it to [`par_ft_gemm_with_ws`](crate::par_ft_gemm_with_ws) /
//! [`par_gemm_with_ws`](crate::par_gemm_with_ws) any number of times —
//! those calls perform **zero heap allocation**. The drivers rewrite every
//! region of the workspace they read (packing covers whole padded slabs,
//! checksum vectors are overwritten per column block, reduction lanes are
//! zero-filled per panel), so no cross-call re-zeroing is needed.

use crate::ctx::ParGemmContext;
use crate::shared::SharedVec;
use ftgemm_core::{AlignedVec, Scalar};
use ftgemm_pool::ShardedBuffer;
use parking_lot::Mutex;

/// Preallocated shared + per-thread state for the matrix-parallel drivers.
///
/// Capacities are upper bounds: a workspace built for `m x n x k` also
/// serves any problem with smaller `m`, `k`, column-block and depth-panel
/// extents on the *same* thread count (see [`Self::fits`]).
#[derive(Debug)]
pub struct ParFtWorkspace<T: Scalar> {
    m: usize,
    k: usize,
    nc_cap: usize,
    kc_cap: usize,
    a_len: usize,
    b_len: usize,
    pub(crate) btilde: SharedVec<T>,
    pub(crate) ar_full: SharedVec<T>,
    pub(crate) bc_reduced: SharedVec<T>,
    pub(crate) enc_row: SharedVec<T>,
    pub(crate) ref_row: SharedVec<T>,
    pub(crate) enc_col: SharedVec<T>,
    pub(crate) ref_col: SharedVec<T>,
    pub(crate) enc_col_shards: ShardedBuffer<T>,
    pub(crate) bc_shards: ShardedBuffer<T>,
    pub(crate) ref_col_shards: ShardedBuffer<T>,
    /// Per-thread private packed `A~` buffers. Slot `t` is locked only by
    /// pool thread `t` inside a region, so the mutexes are uncontended;
    /// they exist to keep the type `Sync`.
    pub(crate) atilde: Vec<Mutex<AlignedVec<T>>>,
}

impl<T: Scalar> ParFtWorkspace<T> {
    /// Workspace sized for one `m x n x k` problem under `ctx`'s blocking
    /// parameters and thread count.
    ///
    /// # Panics
    /// If `ctx.params` fail validation (contexts built through the public
    /// constructors always validate).
    pub fn for_problem(ctx: &ParGemmContext<T>, m: usize, n: usize, k: usize) -> Self {
        ctx.params.validate().expect("valid blocking params");
        let p = ctx.params;
        Self::with_capacities(ctx, m, k, p.nc.min(n), p.kc.min(k))
    }

    /// Workspace for the *unprotected* parallel driver only: packed `B~`
    /// plus per-thread `A~` buffers, with zero-capacity checksum state.
    /// Satisfies [`fits_plain`](Self::fits_plain) for any problem on
    /// `ctx`'s thread count, but not [`fits`](Self::fits) — handing it to
    /// the fused-ABFT driver panics rather than computing garbage.
    pub fn for_plain(ctx: &ParGemmContext<T>) -> Self {
        ctx.params.validate().expect("valid blocking params");
        Self::with_capacities(ctx, 0, 0, 0, 0)
    }

    fn with_capacities(
        ctx: &ParGemmContext<T>,
        m: usize,
        k: usize,
        nc_cap: usize,
        kc_cap: usize,
    ) -> Self {
        let p = ctx.params;
        let nthreads = ctx.nthreads();
        let a_len = p.packed_a_len();
        let b_len = p.packed_b_len();
        ParFtWorkspace {
            m,
            k,
            nc_cap,
            kc_cap,
            a_len,
            b_len,
            btilde: SharedVec::zeroed(b_len),
            ar_full: SharedVec::zeroed(k),
            bc_reduced: SharedVec::zeroed(kc_cap),
            enc_row: SharedVec::zeroed(m),
            ref_row: SharedVec::zeroed(m),
            enc_col: SharedVec::zeroed(nc_cap),
            ref_col: SharedVec::zeroed(nc_cap),
            enc_col_shards: ShardedBuffer::new(nthreads, nc_cap),
            bc_shards: ShardedBuffer::new(nthreads, kc_cap),
            ref_col_shards: ShardedBuffer::new(nthreads, nc_cap),
            atilde: (0..nthreads)
                .map(|_| Mutex::new(AlignedVec::zeroed(a_len).expect("A~ allocation")))
                .collect(),
        }
    }

    /// True when this workspace can serve an `m x n x k` problem under
    /// `ctx` with the *fused-ABFT* driver, without reallocation. Requires
    /// the exact thread count it was built for (reduction lanes are
    /// reduced across *all* lanes).
    pub fn fits(&self, ctx: &ParGemmContext<T>, m: usize, n: usize, k: usize) -> bool {
        let p = ctx.params;
        self.fits_plain(ctx)
            && self.m >= m
            && self.k >= k
            && self.nc_cap >= p.nc.min(n)
            && self.kc_cap >= p.kc.min(k)
    }

    /// True when this workspace can serve the *unprotected* parallel driver
    /// under `ctx` (only the packed `B~` and per-thread `A~` buffers are
    /// touched, whose sizes depend on blocking parameters, not the
    /// problem).
    pub fn fits_plain(&self, ctx: &ParGemmContext<T>) -> bool {
        let p = ctx.params;
        self.atilde.len() == ctx.nthreads()
            && self.a_len >= p.packed_a_len()
            && self.b_len >= p.packed_b_len()
    }

    /// Grows the workspace (reallocating) if `m x n x k` under `ctx` does
    /// not fit; no-op otherwise. Capacities never shrink.
    pub fn ensure(&mut self, ctx: &ParGemmContext<T>, m: usize, n: usize, k: usize) {
        if self.fits(ctx, m, n, k) {
            return;
        }
        ctx.params.validate().expect("valid blocking params");
        let p = ctx.params;
        *self = Self::with_capacities(
            ctx,
            self.m.max(m),
            self.k.max(k),
            self.nc_cap.max(p.nc.min(n)),
            self.kc_cap.max(p.kc.min(k)),
        );
    }

    /// Stable address of the workspace's packed-`B~` buffer.
    ///
    /// Diagnostics hook: a caller replaying one plan can assert this value
    /// does not change across runs, proving the hot path reuses (rather
    /// than reallocates) its buffers.
    pub fn base_addr(&self) -> usize {
        self.btilde.as_ptr() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_and_ensure() {
        let ctx = ParGemmContext::<f64>::with_threads(2);
        let mut ws = ParFtWorkspace::for_problem(&ctx, 64, 64, 64);
        assert!(ws.fits(&ctx, 64, 64, 64));
        assert!(ws.fits(&ctx, 32, 64, 16));
        let addr = ws.base_addr();
        ws.ensure(&ctx, 64, 64, 64);
        assert_eq!(ws.base_addr(), addr, "no-op ensure must not reallocate");
        ws.ensure(&ctx, 128, 64, 128);
        assert!(ws.fits(&ctx, 128, 64, 128));
        assert!(ws.fits(&ctx, 64, 64, 64), "capacities never shrink");
    }

    #[test]
    fn wrong_thread_count_does_not_fit() {
        let ctx2 = ParGemmContext::<f64>::with_threads(2);
        let ctx3 = ParGemmContext::<f64>::with_threads(3);
        let ws = ParFtWorkspace::for_problem(&ctx2, 32, 32, 32);
        assert!(!ws.fits(&ctx3, 32, 32, 32));
    }
}
