//! # ftgemm-parallel
//!
//! Cache-friendly multithreaded (FT-)GEMM — the paper's §2.3 / Fig. 1.
//!
//! ## Design (mirroring the paper on a persistent thread pool)
//!
//! * The `C` and `A` work is partitioned along the **M** dimension in
//!   `MR`-aligned static chunks; each thread owns its row slice for the
//!   whole call.
//! * The packed **`B~` buffer is shared** (it targets the shared L3) and is
//!   packed *cooperatively*: each depth panel's columns are split along N
//!   across threads.
//! * Each thread holds a **private packed `A~`** buffer (it targets the
//!   per-core L2), packed from the thread's own row slice.
//! * For FT: row checksums (`enc_row`/`ref_row`, the paper's C_c) live in
//!   the thread's row slice — fully local. Column checksums (the paper's
//!   C_r) need all rows, so per-thread partials go through a cross-thread
//!   **reduction** after a barrier, exactly like the paper's "extra stage of
//!   reduction … to compute the final column checksum B_c" (which this crate
//!   also performs for `bc`).
//! * After every depth panel all threads meet at a barrier and verification
//!   runs ("p-loop: verify"): each thread checks its own row checksums;
//!   thread 0 checks the reduced column checksums and performs correction.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod batch;
mod ctx;
mod par_ft_gemm;
mod par_gemm;
mod shared;
mod workspace;

pub use batch::{
    par_batch_ft_gemm, par_batch_ft_gemm_timed, BatchItem, BatchTiming, BatchWorkspace,
};
pub use ctx::ParGemmContext;
pub use par_ft_gemm::{par_ft_gemm, par_ft_gemm_with_ws};
pub use par_gemm::{par_gemm, par_gemm_with_ws};
pub use shared::SharedVec;
pub use workspace::ParFtWorkspace;
