//! Parallel GEMM context: the pool plus kernel/blocking configuration.

use ftgemm_core::{BlockingParams, CacheInfo, GemmContext, IsaLevel, Kernel, Scalar};
use ftgemm_pool::{ThreadPool, Topology};
use std::sync::Arc;

/// Reusable parallel GEMM state: the worker pool and kernel selection.
///
/// The pool is `Arc`-shared so one set of workers serves both the plain and
/// fault-tolerant entry points across many calls (threads are persistent,
/// like an OpenMP runtime).
///
/// A context can be **node-scoped** ([`ParGemmContext::for_node_threads`]):
/// its pool is sized to one NUMA node's worker subset and
/// [`node`](ParGemmContext::node) reports which domain it serves. The
/// serving layer builds one such view per node so a request's compute,
/// packing buffers, and worker threads stay on the node its operands live
/// on; machine-wide contexts report `node() == None`.
#[derive(Debug, Clone)]
pub struct ParGemmContext<T: Scalar> {
    pool: Arc<ThreadPool>,
    /// Selected micro-kernel (shared by every thread).
    pub kernel: Kernel<T>,
    /// Blocking parameters.
    pub params: BlockingParams,
    /// The memory domain this context's workers are pinned to, when
    /// node-scoped.
    node: Option<usize>,
}

impl<T: Scalar> ParGemmContext<T> {
    /// Context using every available core and the best ISA tier.
    pub fn new() -> Self {
        Self::with_threads(ftgemm_core::cpu::num_cpus())
    }

    /// Context with an explicit thread count.
    pub fn with_threads(nthreads: usize) -> Self {
        Self::with_threads_and_isa(nthreads, IsaLevel::detect())
    }

    /// Machine-wide context whose pool spans `topology` (one thread per
    /// core, worker subsets pinned per node).
    pub fn with_topology(topology: &Topology) -> Self {
        Self::with_pool(
            Arc::new(ThreadPool::with_topology(topology)),
            IsaLevel::detect(),
        )
    }

    /// Node-scoped worker view: a context whose `nthreads`-thread pool
    /// serves exactly one memory domain. The pool's threads *are* the
    /// node's worker subset — each worker reports the real `node` through
    /// [`WorkerCtx::node`](ftgemm_pool::WorkerCtx::node)
    /// (`PoolPartition::for_node`), so node-keyed packing or affinity
    /// logic attributes them correctly — and the context records it for
    /// schedulers and stats.
    pub fn for_node_threads(node: usize, nthreads: usize) -> Self {
        let pool = ThreadPool::with_partition(
            nthreads,
            ftgemm_pool::PoolPartition::for_node(node, nthreads),
        );
        let mut ctx = Self::with_pool(Arc::new(pool), IsaLevel::detect());
        ctx.node = Some(node);
        ctx
    }

    /// Context with explicit thread count and ISA tier.
    pub fn with_threads_and_isa(nthreads: usize, isa: IsaLevel) -> Self {
        let kernel = ftgemm_core::select_kernel::<T>(isa);
        let params = BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        ParGemmContext {
            pool: Arc::new(ThreadPool::new(nthreads)),
            kernel,
            params,
            node: None,
        }
    }

    /// Context sharing an existing pool.
    pub fn with_pool(pool: Arc<ThreadPool>, isa: IsaLevel) -> Self {
        let kernel = ftgemm_core::select_kernel::<T>(isa);
        let params = BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        ParGemmContext {
            pool,
            kernel,
            params,
            node: None,
        }
    }

    /// The worker pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Number of threads per region.
    pub fn nthreads(&self) -> usize {
        self.pool.nthreads()
    }

    /// The memory domain this context is scoped to (`None` for
    /// machine-wide contexts).
    pub fn node(&self) -> Option<usize> {
        self.node
    }

    /// Overrides blocking parameters (validated against the kernel tile).
    pub fn set_params(&mut self, params: BlockingParams) -> ftgemm_core::Result<()> {
        // Reuse the serial context validation logic.
        let mut probe = GemmContext::<T>::with_isa(self.kernel.isa);
        probe.set_params(params)?;
        self.params = params;
        Ok(())
    }
}

impl<T: Scalar> Default for ParGemmContext<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_all_cores() {
        let ctx = ParGemmContext::<f64>::new();
        assert_eq!(ctx.nthreads(), ftgemm_core::cpu::num_cpus());
    }

    #[test]
    fn explicit_thread_count() {
        let ctx = ParGemmContext::<f64>::with_threads(3);
        assert_eq!(ctx.nthreads(), 3);
    }

    #[test]
    fn pool_sharing() {
        let a = ParGemmContext::<f64>::with_threads(2);
        let b = ParGemmContext::<f32>::with_pool(Arc::new(ThreadPool::new(2)), IsaLevel::Portable);
        assert_eq!(a.nthreads(), b.nthreads());
    }

    #[test]
    fn node_scoped_view_reports_node() {
        let machine = ParGemmContext::<f64>::with_threads(2);
        assert_eq!(machine.node(), None);
        let scoped = ParGemmContext::<f64>::for_node_threads(3, 2);
        assert_eq!(scoped.node(), Some(3));
        assert_eq!(scoped.nthreads(), 2);
        // Kernel selection is node-independent.
        assert_eq!(scoped.kernel.isa, machine.kernel.isa);
        // Workers of the node-scoped pool report the real node id.
        let seen = std::sync::atomic::AtomicUsize::new(usize::MAX);
        scoped.pool().run(|ctx| {
            assert_eq!(ctx.node(), 3);
            seen.store(ctx.node(), std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn topology_context_spans_all_nodes() {
        let ctx = ParGemmContext::<f64>::with_topology(&Topology::synthetic(2, 2));
        assert_eq!(ctx.nthreads(), 4);
        assert_eq!(ctx.pool().num_nodes(), 2);
        assert_eq!(ctx.node(), None);
    }

    #[test]
    fn set_params_validates() {
        let mut ctx = ParGemmContext::<f64>::with_threads(1);
        let bad = BlockingParams {
            mr: ctx.kernel.mr + 1,
            nr: ctx.kernel.nr,
            mc: 64,
            nc: 64,
            kc: 64,
        };
        assert!(ctx.set_params(bad).is_err());
    }
}
