//! Parallel GEMM context: the pool plus kernel/blocking configuration.

use ftgemm_core::{BlockingParams, CacheInfo, GemmContext, IsaLevel, Kernel, Scalar};
use ftgemm_pool::ThreadPool;
use std::sync::Arc;

/// Reusable parallel GEMM state: the worker pool and kernel selection.
///
/// The pool is `Arc`-shared so one set of workers serves both the plain and
/// fault-tolerant entry points across many calls (threads are persistent,
/// like an OpenMP runtime).
#[derive(Debug, Clone)]
pub struct ParGemmContext<T: Scalar> {
    pool: Arc<ThreadPool>,
    /// Selected micro-kernel (shared by every thread).
    pub kernel: Kernel<T>,
    /// Blocking parameters.
    pub params: BlockingParams,
}

impl<T: Scalar> ParGemmContext<T> {
    /// Context using every available core and the best ISA tier.
    pub fn new() -> Self {
        Self::with_threads(ftgemm_core::cpu::num_cpus())
    }

    /// Context with an explicit thread count.
    pub fn with_threads(nthreads: usize) -> Self {
        Self::with_threads_and_isa(nthreads, IsaLevel::detect())
    }

    /// Context with explicit thread count and ISA tier.
    pub fn with_threads_and_isa(nthreads: usize, isa: IsaLevel) -> Self {
        let kernel = ftgemm_core::select_kernel::<T>(isa);
        let params = BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        ParGemmContext {
            pool: Arc::new(ThreadPool::new(nthreads)),
            kernel,
            params,
        }
    }

    /// Context sharing an existing pool.
    pub fn with_pool(pool: Arc<ThreadPool>, isa: IsaLevel) -> Self {
        let kernel = ftgemm_core::select_kernel::<T>(isa);
        let params = BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        ParGemmContext {
            pool,
            kernel,
            params,
        }
    }

    /// The worker pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Number of threads per region.
    pub fn nthreads(&self) -> usize {
        self.pool.nthreads()
    }

    /// Overrides blocking parameters (validated against the kernel tile).
    pub fn set_params(&mut self, params: BlockingParams) -> ftgemm_core::Result<()> {
        // Reuse the serial context validation logic.
        let mut probe = GemmContext::<T>::with_isa(self.kernel.isa);
        probe.set_params(params)?;
        self.params = params;
        Ok(())
    }
}

impl<T: Scalar> Default for ParGemmContext<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_all_cores() {
        let ctx = ParGemmContext::<f64>::new();
        assert_eq!(ctx.nthreads(), ftgemm_core::cpu::num_cpus());
    }

    #[test]
    fn explicit_thread_count() {
        let ctx = ParGemmContext::<f64>::with_threads(3);
        assert_eq!(ctx.nthreads(), 3);
    }

    #[test]
    fn pool_sharing() {
        let a = ParGemmContext::<f64>::with_threads(2);
        let b = ParGemmContext::<f32>::with_pool(Arc::new(ThreadPool::new(2)), IsaLevel::Portable);
        assert_eq!(a.nthreads(), b.nthreads());
    }

    #[test]
    fn set_params_validates() {
        let mut ctx = ParGemmContext::<f64>::with_threads(1);
        let bad = BlockingParams {
            mr: ctx.kernel.mr + 1,
            nr: ctx.kernel.nr,
            mc: 64,
            nc: 64,
            kc: 64,
        };
        assert!(ctx.set_params(bad).is_err());
    }
}
