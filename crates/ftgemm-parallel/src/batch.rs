//! Batched (FT-)GEMM: many small problems through one parallel region.
//!
//! [`par_ft_gemm`](crate::par_ft_gemm) parallelizes *inside* one matrix —
//! the right shape when a single GEMM is large enough to feed every core.
//! A serving workload is the opposite: thousands of small GEMMs, each far
//! too small to amortize a parallel region of its own. [`par_batch_ft_gemm`]
//! flips the partitioning axis: the **batch** is distributed over the pool's
//! threads, and every item runs the *serial* fused-ABFT driver on its owning
//! thread, reusing that thread's packed-buffer workspace across items (and
//! across batches, via [`BatchWorkspace`]).
//!
//! Scheduling is dynamic (an atomic cursor over the item array, OpenMP
//! `schedule(dynamic)` style) so heterogeneous batches do not leave threads
//! idle behind one long item.

use crate::ctx::ParGemmContext;
use crate::shared::SendPtr;
use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtError, FtGemmContext, FtReport, FtResult};
use ftgemm_core::{GemmContext, MatMut, MatRef, Scalar};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One GEMM problem inside a batch: `C = alpha*A*B + beta*C`.
///
/// `cfg: None` runs the plain (unprotected) serial driver; `Some(cfg)` runs
/// the fused-ABFT driver with that per-item configuration — items of one
/// batch may freely mix protection levels.
pub struct BatchItem<'a, T: Scalar> {
    /// Scaling factor applied to `A*B`.
    pub alpha: T,
    /// Left operand.
    pub a: MatRef<'a, T>,
    /// Right operand.
    pub b: MatRef<'a, T>,
    /// Scaling factor applied to the input `C`.
    pub beta: T,
    /// Output (accumulated in place).
    pub c: MatMut<'a, T>,
    /// Per-item fault-tolerance configuration; `None` = no protection.
    pub cfg: Option<&'a FtConfig>,
}

/// Per-pool-thread serial FT-GEMM contexts, reused across batches so packed
/// `A~`/`B~` buffers and checksum vectors are allocated once per thread
/// rather than once per request.
///
/// Slot `t` is only ever locked by pool thread `t` during a batch region, so
/// the mutexes are uncontended; they exist to keep the type `Sync` and to
/// allow the owner to be dropped independently of the pool.
pub struct BatchWorkspace<T: Scalar> {
    slots: Vec<Mutex<FtGemmContext<T>>>,
}

impl<T: Scalar> BatchWorkspace<T> {
    /// One workspace slot per pool thread, configured with the context's
    /// kernel and blocking parameters.
    pub fn new(ctx: &ParGemmContext<T>) -> Self {
        let slots = (0..ctx.nthreads())
            .map(|_| {
                let mut core = GemmContext::<T>::with_isa(ctx.kernel.isa);
                // The probe in ParGemmContext::set_params validated these
                // params against the same kernel tile; apply cannot fail.
                core.set_params(ctx.params).expect("params match kernel");
                Mutex::new(FtGemmContext::from_core(core))
            })
            .collect();
        BatchWorkspace { slots }
    }

    /// Number of per-thread slots.
    pub fn slots(&self) -> usize {
        self.slots.len()
    }
}

/// Per-thread occupancy measurements of one batched parallel region,
/// returned by [`par_batch_ft_gemm_timed`].
///
/// `thread_busy[t]` is the time pool thread `t` spent inside the region
/// (from entering the region closure to exhausting the work cursor —
/// i.e. workspace lock, item compute, and cursor traffic). With dynamic
/// scheduling a thread that drew the one long item shows a busy time near
/// `wall` while its peers finish early, so the spread of `thread_busy` is
/// exactly the occupancy imbalance a serving layer wants to watch.
#[derive(Debug, Clone, Default)]
pub struct BatchTiming {
    /// Wall time of the whole parallel region (region entry to barrier exit,
    /// measured on the calling thread).
    pub wall: Duration,
    /// Busy time per pool thread, indexed by thread id (`len == nthreads`).
    pub thread_busy: Vec<Duration>,
}

impl BatchTiming {
    /// Summed busy time across threads.
    pub fn busy_total(&self) -> Duration {
        self.thread_busy.iter().sum()
    }

    /// Mean fraction of the region each thread spent busy:
    /// `busy_total / (wall * nthreads)`, in `[0, 1]` up to timer noise.
    /// `0.0` for an empty/degenerate region.
    pub fn occupancy(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.thread_busy.len() as f64;
        if denom <= 0.0 {
            0.0
        } else {
            self.busy_total().as_secs_f64() / denom
        }
    }
}

/// Executes every item of `items` across the pool, one serial driver per
/// item, and returns one `FtResult<FtReport>` per item (index-aligned).
///
/// Plain items (`cfg: None`) report `FtReport::default()` on success. A
/// shape error in one item is recorded in that item's slot and does not
/// affect the rest of the batch.
pub fn par_batch_ft_gemm<T: Scalar>(
    ctx: &ParGemmContext<T>,
    ws: &BatchWorkspace<T>,
    items: &mut [BatchItem<'_, T>],
) -> Vec<FtResult<FtReport>> {
    par_batch_ft_gemm_timed(ctx, ws, items).0
}

/// [`par_batch_ft_gemm`] plus per-thread occupancy measurement: returns the
/// per-item results and a [`BatchTiming`] describing how evenly the batch
/// loaded the pool. The instrumentation is two `Instant` reads per thread
/// per region — negligible against any real batch.
pub fn par_batch_ft_gemm_timed<T: Scalar>(
    ctx: &ParGemmContext<T>,
    ws: &BatchWorkspace<T>,
    items: &mut [BatchItem<'_, T>],
) -> (Vec<FtResult<FtReport>>, BatchTiming) {
    let n = items.len();
    let mut results: Vec<FtResult<FtReport>> = Vec::with_capacity(n);
    results.resize_with(n, || Ok(FtReport::default()));
    if n == 0 {
        return (
            results,
            BatchTiming {
                wall: Duration::ZERO,
                thread_busy: vec![Duration::ZERO; ctx.nthreads()],
            },
        );
    }
    assert!(
        ws.slots.len() >= ctx.nthreads(),
        "workspace has {} slots for a {}-thread pool",
        ws.slots.len(),
        ctx.nthreads()
    );

    let items_ptr = SendPtr(items.as_mut_ptr());
    let results_ptr = SendPtr(results.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    let busy_ns: Vec<AtomicU64> = (0..ctx.nthreads()).map(|_| AtomicU64::new(0)).collect();

    let region_start = Instant::now();
    ctx.pool().run(|w| {
        // Capture the SendPtr wrappers themselves, not their raw fields
        // (auto-capture of `.0` would capture the non-Send raw pointers).
        #[allow(clippy::redundant_locals)]
        let items_ptr = items_ptr;
        #[allow(clippy::redundant_locals)]
        let results_ptr = results_ptr;
        let thread_start = Instant::now();
        let mut slot = ws.slots[w.tid].lock();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // SAFETY: the atomic cursor hands out each index exactly once,
            // so item/result accesses are disjoint across threads, and the
            // region barrier in `run` orders them against the caller.
            let item = unsafe { &mut *items_ptr.0.add(i) };
            let out = unsafe { &mut *results_ptr.0.add(i) };
            *out = match item.cfg {
                Some(cfg) => ft_gemm_with_ctx(
                    &mut slot,
                    cfg,
                    item.alpha,
                    &item.a,
                    &item.b,
                    item.beta,
                    &mut item.c,
                ),
                None => ftgemm_core::gemm(
                    &mut slot.core,
                    item.alpha,
                    &item.a,
                    &item.b,
                    item.beta,
                    &mut item.c,
                )
                .map(|()| FtReport::default())
                .map_err(FtError::Core),
            };
        }
        busy_ns[w.tid].store(
            thread_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    });
    let wall = region_start.elapsed();

    let timing = BatchTiming {
        wall,
        thread_busy: busy_ns
            .iter()
            .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
            .collect(),
    };
    (results, timing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_abft::ft_gemm;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;
    use ftgemm_faults::{ErrorModel, FaultInjector, Rate};

    fn random_problem(
        m: usize,
        n: usize,
        k: usize,
        seed: u64,
    ) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
        (
            Matrix::<f64>::random(m, k, seed),
            Matrix::<f64>::random(k, n, seed + 1),
            Matrix::<f64>::random(m, n, seed + 2),
        )
    }

    #[test]
    fn batch_matches_serial_loop() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let ws = BatchWorkspace::new(&ctx);
        let shapes = [
            (17, 23, 9),
            (64, 64, 64),
            (5, 80, 33),
            (40, 1, 12),
            (1, 1, 1),
            (96, 31, 50),
        ];
        let cfg = FtConfig::default();

        let mut problems: Vec<_> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k))| random_problem(m, n, k, 100 + i as u64 * 7))
            .collect();
        let mut expected: Vec<Matrix<f64>> = problems.iter().map(|(_, _, c)| c.clone()).collect();
        for ((a, b, _), c_exp) in problems.iter().zip(expected.iter_mut()) {
            ft_gemm(
                &cfg,
                1.5,
                &a.as_ref(),
                &b.as_ref(),
                0.5,
                &mut c_exp.as_mut(),
            )
            .unwrap();
        }

        let mut items: Vec<BatchItem<'_, f64>> = problems
            .iter_mut()
            .map(|(a, b, c)| BatchItem {
                alpha: 1.5,
                a: a.as_ref(),
                b: b.as_ref(),
                beta: 0.5,
                c: c.as_mut(),
                cfg: Some(&cfg),
            })
            .collect();
        let results = par_batch_ft_gemm(&ctx, &ws, &mut items);
        drop(items);

        for (i, r) in results.iter().enumerate() {
            let rep = r.as_ref().unwrap();
            assert_eq!(rep.detected, 0, "item {i}");
            assert!(rep.verifications > 0, "item {i}");
        }
        for (i, ((_, _, c), c_exp)) in problems.iter().zip(expected.iter()).enumerate() {
            assert!(c.rel_max_diff(c_exp) < 1e-12, "item {i}");
        }
    }

    #[test]
    fn mixed_protection_batch() {
        let ctx = ParGemmContext::<f64>::with_threads(3);
        let ws = BatchWorkspace::new(&ctx);
        let cfg = FtConfig::default();
        let (a, b, c0) = random_problem(30, 40, 20, 9);
        let mut c_ft = c0.clone();
        let mut c_plain = c0.clone();
        let mut c_exp = c0.clone();
        naive_gemm(2.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_exp.as_mut());

        let mut items = vec![
            BatchItem {
                alpha: 2.0,
                a: a.as_ref(),
                b: b.as_ref(),
                beta: 1.0,
                c: c_ft.as_mut(),
                cfg: Some(&cfg),
            },
            BatchItem {
                alpha: 2.0,
                a: a.as_ref(),
                b: b.as_ref(),
                beta: 1.0,
                c: c_plain.as_mut(),
                cfg: None,
            },
        ];
        let results = par_batch_ft_gemm(&ctx, &ws, &mut items);
        drop(items);
        assert!(results[0].as_ref().unwrap().verifications > 0);
        assert_eq!(results[1].as_ref().unwrap(), &FtReport::default());
        assert!(c_ft.rel_max_diff(&c_exp) < 1e-10);
        assert!(c_plain.rel_max_diff(&c_exp) < 1e-10);
    }

    #[test]
    fn injected_errors_corrected_per_item() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let ws = BatchWorkspace::new(&ctx);
        let inj = FaultInjector::new(3, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(1));
        let cfg = FtConfig::with_injector(inj);
        let clean_cfg = FtConfig::default();

        let mut problems: Vec<_> = (0..8)
            .map(|i| random_problem(48, 48, 32, 500 + i))
            .collect();
        let mut expected: Vec<Matrix<f64>> = problems.iter().map(|(_, _, c)| c.clone()).collect();
        for ((a, b, _), c_exp) in problems.iter().zip(expected.iter_mut()) {
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_exp.as_mut());
        }

        let mut items: Vec<BatchItem<'_, f64>> = problems
            .iter_mut()
            .enumerate()
            .map(|(i, (a, b, c))| BatchItem {
                alpha: 1.0,
                a: a.as_ref(),
                b: b.as_ref(),
                beta: 1.0,
                c: c.as_mut(),
                cfg: Some(if i % 2 == 0 { &cfg } else { &clean_cfg }),
            })
            .collect();
        let results = par_batch_ft_gemm(&ctx, &ws, &mut items);
        drop(items);

        let total = FtReport::merged(results.iter().map(|r| *r.as_ref().unwrap()));
        assert!(total.injected > 0);
        assert_eq!(total.corrected, total.injected);
        for (i, ((_, _, c), c_exp)) in problems.iter().zip(expected.iter()).enumerate() {
            assert!(c.rel_max_diff(c_exp) < 1e-9, "item {i}");
        }
    }

    #[test]
    fn shape_error_isolated_to_its_item() {
        let ctx = ParGemmContext::<f64>::with_threads(2);
        let ws = BatchWorkspace::new(&ctx);
        let (a, _b, mut c) = random_problem(10, 10, 10, 1);
        let bad_b = Matrix::<f64>::zeros(3, 10); // k mismatch
        let (a2, b2, mut c2) = random_problem(12, 8, 6, 2);
        let mut c_exp = c2.clone();
        naive_gemm(1.0, &a2.as_ref(), &b2.as_ref(), 0.0, &mut c_exp.as_mut());

        let mut items = vec![
            BatchItem {
                alpha: 1.0,
                a: a.as_ref(),
                b: bad_b.as_ref(),
                beta: 0.0,
                c: c.as_mut(),
                cfg: None,
            },
            BatchItem {
                alpha: 1.0,
                a: a2.as_ref(),
                b: b2.as_ref(),
                beta: 0.0,
                c: c2.as_mut(),
                cfg: None,
            },
        ];
        let results = par_batch_ft_gemm(&ctx, &ws, &mut items);
        drop(items);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert!(c2.rel_max_diff(&c_exp) < 1e-10);
    }

    #[test]
    fn empty_batch() {
        let ctx = ParGemmContext::<f64>::with_threads(2);
        let ws = BatchWorkspace::new(&ctx);
        let mut items: Vec<BatchItem<'_, f64>> = Vec::new();
        assert!(par_batch_ft_gemm(&ctx, &ws, &mut items).is_empty());
        let (_, timing) = par_batch_ft_gemm_timed(&ctx, &ws, &mut items);
        assert_eq!(timing.thread_busy, vec![Duration::ZERO; 2]);
        assert_eq!(timing.occupancy(), 0.0);
    }

    #[test]
    fn single_thread_busy_tracks_wall() {
        // With one thread the region closure runs inline on the caller, so
        // its busy time and the region wall time bracket the same work: the
        // busy sum must be ≈ the wall time (within scheduling overhead).
        let ctx = ParGemmContext::<f64>::with_threads(1);
        let ws = BatchWorkspace::new(&ctx);
        let mut problems: Vec<_> = (0..6).map(|i| random_problem(96, 96, 96, 40 + i)).collect();
        let cfg = FtConfig::default();
        let mut items: Vec<BatchItem<'_, f64>> = problems
            .iter_mut()
            .map(|(a, b, c)| BatchItem {
                alpha: 1.0,
                a: a.as_ref(),
                b: b.as_ref(),
                beta: 0.0,
                c: c.as_mut(),
                cfg: Some(&cfg),
            })
            .collect();
        let (results, timing) = par_batch_ft_gemm_timed(&ctx, &ws, &mut items);
        drop(items);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(timing.thread_busy.len(), 1);
        assert!(timing.wall > Duration::ZERO);
        assert!(timing.thread_busy[0] <= timing.wall);
        assert!(
            timing.busy_total() >= timing.wall / 2,
            "busy {:?} vs wall {:?}",
            timing.busy_total(),
            timing.wall
        );
        assert!(timing.occupancy() > 0.0 && timing.occupancy() <= 1.0 + 1e-6);
    }

    #[test]
    fn multi_thread_busy_bounded_by_wall() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        let ws = BatchWorkspace::new(&ctx);
        let mut problems: Vec<_> = (0..16)
            .map(|i| random_problem(64, 64, 64, 70 + i))
            .collect();
        let cfg = FtConfig::default();
        let mut items: Vec<BatchItem<'_, f64>> = problems
            .iter_mut()
            .map(|(a, b, c)| BatchItem {
                alpha: 1.0,
                a: a.as_ref(),
                b: b.as_ref(),
                beta: 0.0,
                c: c.as_mut(),
                cfg: Some(&cfg),
            })
            .collect();
        let (results, timing) = par_batch_ft_gemm_timed(&ctx, &ws, &mut items);
        drop(items);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(timing.thread_busy.len(), 4);
        // Per-thread busy time cannot exceed the region wall time (small
        // slack for clock granularity across threads).
        let slack = Duration::from_millis(2);
        for (t, busy) in timing.thread_busy.iter().enumerate() {
            assert!(
                *busy <= timing.wall + slack,
                "thread {t}: {busy:?} > {:?}",
                timing.wall
            );
        }
        assert!(timing.busy_total() > Duration::ZERO);
    }
}
