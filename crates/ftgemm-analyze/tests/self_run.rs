//! The analyzer's own acceptance gate, run from `cargo test`.
//!
//! `workspace_is_clean` keeps the real tree at zero findings. The other
//! tests copy the workspace into a temp dir, deliberately break one
//! invariant (a pinned verb byte, a lock acquisition order, a fresh
//! `unwrap()` in an audited crate), and assert the analyzer reports it —
//! so a regression in any pass fails `cargo test`, not just CI.

use std::fs;
use std::path::{Path, PathBuf};

use ftgemm_analyze::findings::Report;
use ftgemm_analyze::workspace::{run, Config};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_root(root: &Path) -> Report {
    run(&Config {
        root: root.to_path_buf(),
        write_baseline: false,
    })
    .expect("analyzer configuration error")
}

/// Copies the parts of the workspace the analyzer reads (`crates/*/src`,
/// `shims`, `analyze`, `docs`) into a fresh temp dir named after `tag`.
fn copy_workspace(tag: &str) -> PathBuf {
    let dst = std::env::temp_dir().join(format!("ftgemm-analyze-{}-{}", tag, std::process::id()));
    let _ = fs::remove_dir_all(&dst);
    let src = workspace_root();
    for part in ["crates", "shims", "analyze", "docs"] {
        copy_tree(&src.join(part), &dst.join(part));
    }
    dst
}

fn copy_tree(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create temp dir");
    for entry in fs::read_dir(src).expect("read source dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        if name == "target" || name == ".git" {
            continue;
        }
        let from = entry.path();
        let to = dst.join(&name);
        if from.is_dir() {
            copy_tree(&from, &to);
        } else {
            fs::copy(&from, &to).expect("copy file");
        }
    }
}

#[test]
fn workspace_is_clean() {
    let report = run_root(&workspace_root());
    assert!(
        report.is_clean(),
        "workspace has analyzer findings:\n{}",
        report.to_text()
    );
}

#[test]
fn pin_drift_is_detected() {
    let root = copy_workspace("pindrift");
    let pins = root.join("analyze/pins.toml");
    let text = fs::read_to_string(&pins).expect("read pins.toml");
    assert!(text.contains("HELLO = 1"), "expected pinned HELLO verb");
    fs::write(&pins, text.replace("HELLO = 1", "HELLO = 9")).expect("write pins.toml");

    let report = run_root(&root);
    let drift: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.pass == "pins" && f.rule == "pin-drift")
        .collect();
    assert!(
        !drift.is_empty(),
        "mutated verb byte not flagged:\n{}",
        report.to_text()
    );
    assert!(
        drift
            .iter()
            .any(|f| f.file.contains("proto.rs") && f.line > 0),
        "pin-drift finding should name the source file and line: {drift:?}"
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn renamed_scrub_metric_family_is_detected() {
    let root = copy_workspace("scrubmetric");
    let metrics = root.join("crates/ftgemm-net/src/metrics.rs");
    let text = fs::read_to_string(&metrics).expect("read net metrics.rs");
    assert!(
        text.contains("\"ftgemm_scrub_passes_total\""),
        "expected the scrub-passes family literal"
    );
    // Renaming a family is exactly the dashboard-breaking change the
    // metric pins exist to catch: the new name is unpinned AND the pinned
    // name is no longer emitted.
    fs::write(
        &metrics,
        text.replace(
            "\"ftgemm_scrub_passes_total\"",
            "\"ftgemm_scrub_sweeps_total\"",
        ),
    )
    .expect("write net metrics.rs");

    let report = run_root(&root);
    assert!(
        report.findings.iter().any(|f| f.pass == "pins"
            && f.rule == "pin-unpinned"
            && f.file.contains("metrics.rs")
            && f.message.contains("ftgemm_scrub_sweeps_total")),
        "renamed scrub family not flagged as unpinned:\n{}",
        report.to_text()
    );
    assert!(
        report.findings.iter().any(|f| f.pass == "pins"
            && f.rule == "pin-stale"
            && f.message.contains("ftgemm_scrub_passes_total")),
        "vanished pinned scrub family not flagged as stale:\n{}",
        report.to_text()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn lock_order_inversion_is_detected() {
    let root = copy_workspace("lockorder");
    // An orphan module still gets scanned: the walker reads every `.rs`
    // under `crates/*/src`, mod-included or not.
    fs::write(
        root.join("crates/ftgemm-serve/src/analyze_fixture_locks.rs"),
        r#"use std::sync::Mutex;

pub fn forward(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let a = alpha.lock().unwrap();
    let b = beta.lock().unwrap();
    *a + *b
}

pub fn backward(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let b = beta.lock().unwrap();
    let a = alpha.lock().unwrap();
    *a + *b
}
"#,
    )
    .expect("write lock fixture");

    let report = run_root(&root);
    assert!(
        report.findings.iter().any(|f| f.pass == "locks"
            && f.rule == "lock-order-conflict"
            && f.file.contains("analyze_fixture_locks.rs")
            && f.line > 0),
        "inverted lock order not flagged:\n{}",
        report.to_text()
    );
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn new_unwrap_in_audited_crate_is_detected() {
    let root = copy_workspace("newpanic");
    fs::write(
        root.join("crates/ftgemm-serve/src/analyze_fixture_panic.rs"),
        r#"pub fn first_byte(input: &[u8]) -> u8 {
    *input.first().unwrap()
}
"#,
    )
    .expect("write panic fixture");

    let report = run_root(&root);
    assert!(
        report.findings.iter().any(|f| f.pass == "panics"
            && f.rule == "new-panic-site"
            && f.file.contains("analyze_fixture_panic.rs")
            && f.line == 2),
        "fresh unwrap not flagged at its line:\n{}",
        report.to_text()
    );
    let _ = fs::remove_dir_all(&root);
}
