//! In-source policy and allow annotations.
//!
//! Modules declare their concurrency contract in ordinary comments that
//! the analyzer parses out of the lexer's comment stream:
//!
//! ```text
//! // analyze::policy(atomics: relaxed)
//! // analyze::policy(atomics: any)
//! // analyze::policy(publish: cutoff, server_stop as stop)
//! // analyze::allow(seqcst, "store pairs with Acquire in the signal handler")
//! // analyze::allow(lock-order, "guard provably dropped by the match above")
//! ```
//!
//! * `atomics: relaxed` — every `Ordering::` site in the file must be
//!   `Relaxed` unless the cell is declared `publish` (counters-only
//!   modules: metrics, stats).
//! * `atomics: any` — no per-site restriction beyond the workspace-wide
//!   `SeqCst` ban.
//! * `publish: a, b as c` — the named atomics are cross-thread
//!   publication cells: stores must be `Release`/`AcqRel`, loads
//!   `Acquire`/`AcqRel`, and somewhere in the workspace each canonical
//!   cell must have **both** a release store and an acquire load. `x as y`
//!   aliases a local field name to the workspace-wide canonical cell name
//!   (the stop flag is `server_stop` in `conn.rs` but `stop` in
//!   `server.rs`).
//! * `allow(rule, reason)` — suppresses rule findings on the annotation's
//!   line and the line after it. An empty reason is itself a finding.

use crate::lexer::Comment;

/// Per-file atomic-ordering default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomicsPolicy {
    /// Only the workspace-wide SeqCst ban applies.
    #[default]
    Any,
    /// Every site must be `Relaxed` (except declared publish cells).
    RelaxedOnly,
}

/// A declared publication cell: local receiver name plus the canonical
/// workspace-wide cell name it aliases to (usually the same).
#[derive(Debug, Clone, PartialEq)]
pub struct PublishCell {
    pub local: String,
    pub canonical: String,
}

/// One `analyze::allow(rule, reason)` annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allow {
    pub line: usize,
    pub rule: String,
    pub reason: String,
}

/// Everything declared in one file.
#[derive(Debug, Default)]
pub struct FilePolicy {
    pub atomics: AtomicsPolicy,
    pub publish: Vec<PublishCell>,
    pub allows: Vec<Allow>,
    /// Malformed annotations (reported as findings by the caller).
    pub errors: Vec<(usize, String)>,
}

impl FilePolicy {
    /// The canonical cell name a local receiver publishes to, if declared.
    pub fn publish_canonical(&self, local: &str) -> Option<&str> {
        self.publish
            .iter()
            .find(|c| c.local == local)
            .map(|c| c.canonical.as_str())
    }

    /// True when `rule` is allowed at `line` (annotation on the same line
    /// or the line directly above).
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Parses the policy/allow annotations out of a file's comments.
pub fn parse(comments: &[Comment]) -> FilePolicy {
    let mut p = FilePolicy::default();
    for c in comments {
        let text = c
            .text
            .trim()
            .trim_start_matches('!')
            .trim_start_matches('/')
            .trim();
        let Some(rest) = text.strip_prefix("analyze::") else {
            continue;
        };
        if let Some(body) = strip_call(rest, "policy") {
            parse_policy(body, c.line, &mut p);
        } else if let Some(body) = strip_call(rest, "allow") {
            parse_allow(body, c.line, &mut p);
        } else {
            p.errors.push((
                c.line,
                format!("unrecognized analyze:: annotation: `{text}`"),
            ));
        }
    }
    p
}

/// `strip_call("policy(x: y)", "policy")` → `Some("x: y")`.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<&'a str> {
    let s = s.strip_prefix(name)?.trim_start();
    let s = s.strip_prefix('(')?;
    let end = s.rfind(')')?;
    Some(&s[..end])
}

fn parse_policy(body: &str, line: usize, p: &mut FilePolicy) {
    let Some((key, value)) = body.split_once(':') else {
        p.errors
            .push((line, format!("policy body `{body}` is not `key: value`")));
        return;
    };
    match key.trim() {
        "atomics" => match value.trim() {
            "relaxed" => p.atomics = AtomicsPolicy::RelaxedOnly,
            "any" => p.atomics = AtomicsPolicy::Any,
            other => p
                .errors
                .push((line, format!("unknown atomics policy `{other}`"))),
        },
        "publish" => {
            for cell in value.split(',') {
                let cell = cell.trim();
                if cell.is_empty() {
                    continue;
                }
                let (local, canonical) = match cell.split_once(" as ") {
                    Some((l, c)) => (l.trim(), c.trim()),
                    None => (cell, cell),
                };
                if local.is_empty() || canonical.is_empty() {
                    p.errors
                        .push((line, format!("malformed publish cell `{cell}`")));
                    continue;
                }
                p.publish.push(PublishCell {
                    local: local.to_string(),
                    canonical: canonical.to_string(),
                });
            }
            if p.publish.is_empty() {
                p.errors
                    .push((line, "publish policy names no cells".to_string()));
            }
        }
        other => p
            .errors
            .push((line, format!("unknown policy key `{other}`"))),
    }
}

fn parse_allow(body: &str, line: usize, p: &mut FilePolicy) {
    let Some((rule, reason)) = body.split_once(',') else {
        p.errors.push((
            line,
            format!("allow `{body}` is missing a reason: analyze::allow(rule, reason)"),
        ));
        return;
    };
    let reason = reason.trim().trim_matches('"').trim();
    if reason.is_empty() {
        p.errors
            .push((line, format!("allow({}) has an empty reason", rule.trim())));
        return;
    }
    p.allows.push(Allow {
        line,
        rule: rule.trim().to_string(),
        reason: reason.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn policy_of(src: &str) -> FilePolicy {
        parse(&lex(src).comments)
    }

    #[test]
    fn parses_relaxed_policy_and_publish_alias() {
        let p = policy_of(
            "// analyze::policy(atomics: relaxed)\n\
             // analyze::policy(publish: cutoff, server_stop as stop)\n",
        );
        assert_eq!(p.atomics, AtomicsPolicy::RelaxedOnly);
        assert_eq!(p.publish.len(), 2);
        assert_eq!(p.publish_canonical("cutoff"), Some("cutoff"));
        assert_eq!(p.publish_canonical("server_stop"), Some("stop"));
        assert!(p.errors.is_empty());
    }

    #[test]
    fn allow_scopes_to_its_line_and_the_next() {
        let p = policy_of("fn f() {\n// analyze::allow(seqcst, \"handshake\")\n}\n");
        assert!(p.allowed("seqcst", 2));
        assert!(p.allowed("seqcst", 3));
        assert!(!p.allowed("seqcst", 4));
        assert!(!p.allowed("lock-order", 3));
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        let p = policy_of("// analyze::allow(seqcst)\n");
        assert!(p.allows.is_empty());
        assert_eq!(p.errors.len(), 1);
        let p2 = policy_of("// analyze::allow(seqcst, \"\")\n");
        assert!(p2.allows.is_empty());
        assert_eq!(p2.errors.len(), 1);
    }

    #[test]
    fn unknown_annotations_are_errors_not_ignored() {
        let p = policy_of("// analyze::policy(locks: none)\n// analyze::frobnicate(x)\n");
        assert_eq!(p.errors.len(), 2);
    }

    #[test]
    fn doc_comments_parse_too() {
        let p = policy_of("//! analyze::policy(atomics: relaxed)\n");
        assert_eq!(p.atomics, AtomicsPolicy::RelaxedOnly);
    }
}
