//! Findings and the report the tool emits (human text + JSON).

use std::fmt::Write as _;

/// One invariant violation, pinned to a file and line.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which pass produced it: `atomics`, `locks`, `pins`, `panics`.
    pub pass: &'static str,
    /// Machine-readable rule id within the pass (`seqcst`, `lock-cycle`,
    /// `pin-drift`, `new-panic-site`, ...).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line (0 when the finding is file- or workspace-scoped).
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(
        pass: &'static str,
        rule: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            pass,
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

/// Everything a run produced. `notes` are informational (never fail the
/// build); `findings` make the exit code nonzero.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub notes: Vec<String>,
    /// Per-pass site counts, for the summary line ("what did we check").
    pub checked: Vec<(String, usize)>,
}

impl Report {
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.notes.extend(other.notes);
        self.checked.extend(other.checked);
    }

    /// Deterministic ordering: pass, file, line, message.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.pass, &a.file, a.line, &a.message).cmp(&(b.pass, &b.file, b.line, &b.message))
        });
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (what, n) in &self.checked {
            let _ = writeln!(s, "checked: {what}: {n} sites");
        }
        for note in &self.notes {
            let _ = writeln!(s, "note: {note}");
        }
        for f in &self.findings {
            let _ = writeln!(
                s,
                "{}:{}: [{}/{}] {}",
                f.file, f.line, f.pass, f.rule, f.message
            );
        }
        let _ = writeln!(
            s,
            "{}: {} finding(s)",
            if self.is_clean() { "PASS" } else { "FAIL" },
            self.findings.len()
        );
        s
    }

    /// JSON report (hand-rolled; the environment has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"pass\": {}, \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.pass),
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
            s.push_str(if i + 1 < self.findings.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"notes\": [\n");
        for (i, n) in self.notes.iter().enumerate() {
            let _ = write!(s, "    {}", json_str(n));
            s.push_str(if i + 1 < self.notes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        let _ = write!(
            s,
            "  ],\n  \"clean\": {},\n  \"finding_count\": {}\n}}\n",
            self.is_clean(),
            self.findings.len()
        );
        s
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::default();
        r.findings.push(Finding::new(
            "pins",
            "pin-drift",
            "a/b.rs",
            7,
            "verb \"HELLO\" drifted",
        ));
        let j = r.to_json();
        assert!(j.contains(r#""file": "a/b.rs""#));
        assert!(j.contains(r#"\"HELLO\""#));
        assert!(j.contains(r#""finding_count": 1"#));
        assert!(j.contains(r#""clean": false"#));
    }

    #[test]
    fn text_report_says_pass_when_clean() {
        let r = Report::default();
        assert!(r.to_text().contains("PASS: 0 finding(s)"));
    }
}
