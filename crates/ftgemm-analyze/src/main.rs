//! CLI for the workspace static analyzer.
//!
//! ```text
//! cargo run -p ftgemm-analyze                    # text report, exit 1 on findings
//! cargo run -p ftgemm-analyze -- --format json   # machine-readable
//! cargo run -p ftgemm-analyze -- --write-baseline  # regenerate panic baseline
//! cargo run -p ftgemm-analyze -- --root /path/to/workspace
//! ```

use ftgemm_analyze::workspace::{self, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                other => return usage(&format!("--format wants `text` or `json`, got {other:?}")),
            },
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));

    let cfg = Config {
        root,
        write_baseline,
    };
    match workspace::run(&cfg) {
        Ok(report) => {
            if format == "json" {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("ftgemm-analyze: config error: {e}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "ftgemm-analyze [--root DIR] [--format text|json] [--write-baseline]

Static analysis for the ftgemm workspace: atomic-ordering policy,
lock-acquisition order, pinned-constant drift, panic-surface audit.
Exit codes: 0 clean, 1 findings, 2 configuration error.";

fn usage(msg: &str) -> ExitCode {
    eprintln!("ftgemm-analyze: {msg}\n{USAGE}");
    ExitCode::from(2)
}
