//! `ftgemm-analyze`: std-only static analysis for the ftgemm workspace.
//!
//! Four passes over a hand-rolled token stream (no full parse, no
//! external crates — this environment has no registry access):
//!
//! 1. **atomics** — per-module ordering policy: metrics counters are
//!    Relaxed-only, publication cells pair Release stores with Acquire
//!    loads workspace-wide, SeqCst is banned without a justified
//!    `analyze::allow(seqcst, reason)`.
//! 2. **locks** — the cross-crate `.lock()` acquisition graph must be a
//!    DAG; inconsistent pairwise order or a cycle is the deadlock shape.
//! 3. **pins** — wire verbs, error-code bands, `wire_code()`
//!    discriminants, and metric-family names against the golden manifest
//!    `analyze/pins.toml` and the tables in `docs/ARCHITECTURE.md`.
//! 4. **panics** — unwrap/expect/panic!/indexing in the serving crates
//!    against the ratchet baseline `analyze/panic_baseline.tsv`.
//!
//! Run it: `cargo run -p ftgemm-analyze` (text) or
//! `cargo run -p ftgemm-analyze -- --format json`. Exit codes: 0 clean,
//! 1 findings, 2 configuration error. CI runs this next to build/test;
//! `crates/ftgemm-analyze/tests/self_run.rs` keeps the workspace clean
//! from `cargo test` too.

pub mod findings;
pub mod lexer;
pub mod passes;
pub mod policy;
pub mod toml_lite;
pub mod workspace;
