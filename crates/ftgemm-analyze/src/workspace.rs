//! The workspace driver: walks the repo, feeds every non-test `.rs` file
//! through the passes, and assembles the final [`Report`].

use crate::findings::{Finding, Report};
use crate::lexer::{self, Lexed};
use crate::passes::{atomics, locks, panics, pins};
use crate::policy::{self, FilePolicy};
use crate::toml_lite;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Run configuration.
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml`, `crates/`,
    /// `analyze/`, `docs/`).
    pub root: PathBuf,
    /// Regenerate `analyze/panic_baseline.tsv` from the current tree
    /// instead of diffing against it.
    pub write_baseline: bool,
}

/// Crates whose panic surface is audited: the ones that hold request
/// lifetimes. Panics elsewhere (bench drivers, math kernels with
/// `debug_assert`-adjacent indexing) are not a serving-availability risk.
const PANIC_AUDITED: [&str; 3] = ["ftgemm-serve", "ftgemm-net", "ftgemm-obs"];

/// A config/environment failure (missing manifest, unreadable file) —
/// distinct from findings; exits 2, not 1.
pub type ConfigError = String;

/// Runs every pass over the workspace rooted at `cfg.root`.
pub fn run(cfg: &Config) -> Result<Report, ConfigError> {
    let mut report = Report::default();
    let files = collect_rs_files(&cfg.root)?;
    if files.is_empty() {
        return Err(format!(
            "no .rs files found under {} — wrong --root?",
            cfg.root.display()
        ));
    }

    // Per-file sweep: lex once, run atomics + locks on everything, collect
    // panic sites in the audited crates.
    let mut cells: BTreeMap<String, atomics::CellEvidence> = BTreeMap::new();
    let mut graph = locks::LockGraph::default();
    let mut policies: Vec<(String, FilePolicy)> = Vec::new();
    let mut panic_sites: Vec<panics::Site> = Vec::new();
    let mut atomic_sites = 0usize;

    for path in &files {
        let rel = rel_path(&cfg.root, path);
        let src = fs::read_to_string(path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let lexed: Lexed = lexer::lex(&src);
        let tokens = lexer::strip_test_code(&lexed.tokens);
        let pol = policy::parse(&lexed.comments);
        for (line, msg) in &pol.errors {
            report.findings.push(Finding::new(
                "policy",
                "annotation",
                &rel,
                *line,
                msg.clone(),
            ));
        }

        atomic_sites += atomics::check_file(&rel, &tokens, &pol, &mut cells, &mut report);
        locks::scan_file(&rel, &tokens, &pol, &mut graph);

        if PANIC_AUDITED
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/")))
        {
            let lines: Vec<&str> = src.lines().collect();
            panic_sites.extend(panics::collect_sites(&rel, &tokens, &lines, &pol));
        }
        policies.push((rel, pol));
    }

    atomics::finish(&cells, &mut report);
    for (rel, pol) in &policies {
        atomics::check_unused_declarations(rel, pol, &cells, &mut report);
    }
    locks::finish(&graph, &mut report);

    // Pins.
    let pinned = run_pins(&cfg.root, &mut report)?;

    // Panics: diff or regenerate.
    let baseline_path = cfg.root.join("analyze/panic_baseline.tsv");
    if cfg.write_baseline {
        let text = panics::write_baseline(&panic_sites);
        fs::write(&baseline_path, &text)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        report.notes.push(format!(
            "wrote analyze/panic_baseline.tsv ({} sites)",
            panic_sites.len()
        ));
    } else {
        let text = fs::read_to_string(&baseline_path).map_err(|e| {
            format!(
                "cannot read {}: {e} (generate it once with --write-baseline)",
                baseline_path.display()
            )
        })?;
        let baseline = panics::parse_baseline(&text)
            .map_err(|(l, m)| format!("analyze/panic_baseline.tsv:{l}: {m}"))?;
        panics::diff(&panic_sites, &baseline, &mut report);
    }

    report.checked.push(("files".into(), files.len()));
    report
        .checked
        .push(("atomic-ordering sites".into(), atomic_sites));
    report
        .checked
        .push(("lock acquisitions".into(), graph.acquisitions));
    report
        .checked
        .push(("lock-order edges".into(), locks::distinct_edges(&graph)));
    report.checked.push(("pinned constants".into(), pinned));
    report
        .checked
        .push(("panic-capable sites".into(), panic_sites.len()));
    report.sort();
    Ok(report)
}

/// Pass 3 driver: reads the pinned-constant source files, the manifest,
/// and the docs; returns the number of pins checked.
fn run_pins(root: &Path, report: &mut Report) -> Result<usize, ConfigError> {
    let pins_path = root.join("analyze/pins.toml");
    let pins_text = fs::read_to_string(&pins_path)
        .map_err(|e| format!("cannot read {}: {e}", pins_path.display()))?;
    let pins =
        toml_lite::parse(&pins_text).map_err(|(l, m)| format!("analyze/pins.toml:{l}: {m}"))?;

    let read_lexed = |rel: &str| -> Result<Lexed, ConfigError> {
        let src =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        Ok(lexer::lex(&src))
    };

    const PROTO: &str = "crates/ftgemm-net/src/proto.rs";
    const REQUEST: &str = "crates/ftgemm-serve/src/request.rs";
    const EXPORT: &str = "crates/ftgemm-serve/src/export.rs";
    const NET_METRICS: &str = "crates/ftgemm-net/src/metrics.rs";
    const DOCS: &str = "docs/ARCHITECTURE.md";

    let proto = read_lexed(PROTO)?;
    let verbs = pins::extract_mod_consts(&proto.tokens, "verb");
    let error_codes = pins::extract_mod_consts(&proto.tokens, "error_code");
    if verbs.is_empty() || error_codes.is_empty() {
        return Err(format!(
            "{PROTO}: expected `mod verb` and `mod error_code` consts; found {} and {} — \
             extractor out of sync with the source layout",
            verbs.len(),
            error_codes.len()
        ));
    }

    let request = read_lexed(REQUEST)?;
    let wire_codes = pins::extract_wire_codes(&lexer::strip_test_code(&request.tokens));
    if wire_codes.is_empty() {
        return Err(format!(
            "{REQUEST}: found no ServeError::* => N arms in fn wire_code — \
             extractor out of sync with the source layout"
        ));
    }

    let serve_metrics = pins::extract_metric_literals(&read_lexed(EXPORT)?.tokens);
    let net_metrics = pins::extract_metric_literals(&read_lexed(NET_METRICS)?.tokens);

    pins::check_consts(&pins, "verbs", &verbs, PROTO, "verb", report);
    pins::check_consts(
        &pins,
        "error_codes",
        &error_codes,
        PROTO,
        "error code",
        report,
    );
    pins::check_consts(
        &pins,
        "wire_codes",
        &wire_codes,
        REQUEST,
        "wire code",
        report,
    );
    pins::check_metrics(&pins, "serve", &serve_metrics, EXPORT, report);
    pins::check_metrics(&pins, "net", &net_metrics, NET_METRICS, report);
    pins::check_bands(&verbs, &error_codes, &wire_codes, PROTO, report);

    let docs_text =
        fs::read_to_string(root.join(DOCS)).map_err(|e| format!("cannot read {DOCS}: {e}"))?;
    pins::check_docs(&docs_text, DOCS, &verbs, &wire_codes, report);

    Ok(
        verbs.len()
            + error_codes.len()
            + wire_codes.len()
            + serve_metrics.len()
            + net_metrics.len(),
    )
}

/// All non-test `.rs` files under `crates/*/src` and `shims/*/src`.
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, ConfigError> {
    let mut out = Vec::new();
    for group in ["crates", "shims"] {
        let dir = root.join(group);
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // shims/ may not exist in fixtures
        };
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), ConfigError> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let p = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if p.is_dir() {
            // Integration tests / examples / benches are out of scope even
            // when nested under src/ (they never are here, but be safe).
            if matches!(name.as_str(), "tests" | "examples" | "benches" | "target") {
                continue;
            }
            walk(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Workspace-relative display path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
