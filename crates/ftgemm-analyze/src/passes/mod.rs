//! The four analysis passes.
//!
//! * [`atomics`] — atomic-ordering policy (SeqCst ban, relaxed-only
//!   modules, publication-cell Release/Acquire pairing).
//! * [`locks`] — lock-acquisition order (workspace graph must be a DAG).
//! * [`pins`] — pinned-constant drift (verbs, error codes, wire codes,
//!   metric families vs `analyze/pins.toml` and `docs/ARCHITECTURE.md`).
//! * [`panics`] — panic-surface audit (unwrap/expect/panic!/indexing vs
//!   `analyze/panic_baseline.tsv`).

pub mod atomics;
pub mod locks;
pub mod panics;
pub mod pins;
