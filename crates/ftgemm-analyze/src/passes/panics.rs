//! Pass 4: panic-surface audit.
//!
//! The serving crates (`ftgemm-serve`, `ftgemm-net`, `ftgemm-obs`) hold
//! request lifetimes: a panic in a connection or dispatcher thread strands
//! clients, leaks handles, and (under `std::sync` mutexes) poisons locks
//! for every other thread. This pass inventories panic-capable sites in
//! non-test code — `.unwrap()`, `.expect(..)`, `panic!(..)`, and slice
//! indexing `x[i]` — and diffs them against the committed baseline
//! `analyze/panic_baseline.tsv`.
//!
//! The baseline is a *multiset* keyed on `(file, kind, trimmed-snippet)`
//! rather than line numbers, so unrelated edits that shift lines do not
//! churn it. New sites fail the build (add handling, or consciously
//! regenerate with `--write-baseline`); stale entries also fail, so the
//! baseline only ever shrinks by being re-earned.

use crate::findings::{Finding, Report};
use crate::lexer::{Tok, Token};
use crate::policy::FilePolicy;
use std::collections::BTreeMap;

const PASS: &str = "panics";

/// One panic-capable site.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    pub kind: &'static str,
    pub file: String,
    pub line: usize,
    pub snippet: String,
}

/// `(file, kind, snippet) → count`.
pub type Baseline = BTreeMap<(String, String, String), usize>;

/// Keywords that can legally precede `[` without it being an index
/// expression (array literals, types, patterns).
fn keyword_before_bracket(id: &str) -> bool {
    matches!(
        id,
        "in" | "return"
            | "if"
            | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "move"
            | "mut"
            | "ref"
            | "break"
            | "continue"
            | "where"
            | "dyn"
            | "as"
            | "const"
            | "static"
            | "let"
            | "fn"
            | "pub"
            | "use"
            | "impl"
            | "type"
    )
}

/// Collects panic-capable sites from a (test-stripped) token stream.
/// `src_lines` supplies the snippet text; `policy` supplies
/// `analyze::allow(panic, ...)` suppressions.
pub fn collect_sites(
    file: &str,
    tokens: &[Token],
    src_lines: &[&str],
    policy: &FilePolicy,
) -> Vec<Site> {
    let mut out = Vec::new();
    let mut push = |kind: &'static str, line: usize| {
        if policy.allowed("panic", line) {
            return;
        }
        let snippet = src_lines
            .get(line.saturating_sub(1))
            .map(|l| trim_snippet(l))
            .unwrap_or_default();
        out.push(Site {
            kind,
            file: file.to_string(),
            line,
            snippet,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        match &t.tok {
            Tok::Punct('.') => {
                let (Some(name_t), Some(paren_t)) = (tokens.get(i + 1), tokens.get(i + 2)) else {
                    continue;
                };
                if paren_t.tok != Tok::Punct('(') {
                    continue;
                }
                match &name_t.tok {
                    Tok::Ident(n) if n == "unwrap" => push("unwrap", name_t.line),
                    Tok::Ident(n) if n == "expect" => push("expect", name_t.line),
                    _ => {}
                }
            }
            Tok::Ident(id)
                if id == "panic" && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('!')) =>
            {
                // `core::panic!` paths still end with `panic !`; a
                // preceding `.` would be a method, which can't happen.
                push("panic", t.line);
            }
            Tok::Punct('[') => {
                // Index expression iff the previous token is a value:
                // an identifier (not a keyword), `)`, or `]`.
                let Some(prev) = (i > 0).then(|| &tokens[i - 1]) else {
                    continue;
                };
                let is_index = match &prev.tok {
                    Tok::Ident(id) => !keyword_before_bracket(id),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                // `#[attr]` never matches: prev is `#`. `vec![..]`: prev is
                // `!`. `&[..]`: prev is `&`.
                if is_index {
                    push("slice-index", t.line);
                }
            }
            _ => {}
        }
    }
    out
}

/// Truncated, tab-free, trimmed source line for baseline keys.
fn trim_snippet(line: &str) -> String {
    let s: String = line.trim().replace('\t', " ");
    if s.chars().count() > 120 {
        let cut: String = s.chars().take(117).collect();
        format!("{cut}...")
    } else {
        s
    }
}

/// Parses `analyze/panic_baseline.tsv`: `count<TAB>kind<TAB>file<TAB>snippet`
/// per line, `#` comments and blanks skipped.
pub fn parse_baseline(text: &str) -> Result<Baseline, (usize, String)> {
    let mut out = Baseline::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (Some(count), Some(kind), Some(file), Some(snippet)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err((lineno, format!("expected 4 tab-separated fields: `{raw}`")));
        };
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| (lineno, format!("bad count `{count}`")))?;
        let key = (file.to_string(), kind.to_string(), snippet.to_string());
        if out.insert(key, count).is_some() {
            return Err((lineno, format!("duplicate baseline entry: `{raw}`")));
        }
    }
    Ok(out)
}

/// Serializes sites back into baseline format (sorted, stable).
pub fn write_baseline(sites: &[Site]) -> String {
    let mut counts: Baseline = Baseline::new();
    for s in sites {
        *counts
            .entry((s.file.clone(), s.kind.to_string(), s.snippet.clone()))
            .or_insert(0) += 1;
    }
    let mut out = String::from(
        "# Panic-surface baseline: count<TAB>kind<TAB>file<TAB>snippet.\n\
         # New panic sites in serving crates fail `cargo run -p ftgemm-analyze`.\n\
         # Regenerate deliberately with `-- --write-baseline`; prefer shrinking it.\n",
    );
    for ((file, kind, snippet), count) in &counts {
        out.push_str(&format!("{count}\t{kind}\t{file}\t{snippet}\n"));
    }
    out
}

/// Diffs collected sites against the baseline. New sites and stale
/// entries are both findings.
pub fn diff(sites: &[Site], baseline: &Baseline, report: &mut Report) {
    // Group actual sites by key, keeping line order.
    let mut grouped: BTreeMap<(String, String, String), Vec<&Site>> = BTreeMap::new();
    for s in sites {
        grouped
            .entry((s.file.clone(), s.kind.to_string(), s.snippet.clone()))
            .or_default()
            .push(s);
    }
    for (key, group) in &grouped {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        for site in group.iter().skip(allowed) {
            report.findings.push(Finding::new(
                PASS,
                "new-panic-site",
                &site.file,
                site.line,
                format!(
                    "{} site not in analyze/panic_baseline.tsv: `{}` — handle the error \
                     (typed error, lock-poison tolerance) or regenerate the baseline \
                     deliberately with --write-baseline",
                    site.kind, site.snippet
                ),
            ));
        }
    }
    for ((file, kind, snippet), count) in baseline {
        let actual = grouped
            .get(&(file.clone(), kind.clone(), snippet.clone()))
            .map(|g| g.len())
            .unwrap_or(0);
        if actual < *count {
            report.findings.push(Finding::new(
                PASS,
                "stale-baseline",
                file,
                0,
                format!(
                    "baseline lists {count}× {kind} `{snippet}` but only {actual} remain — \
                     shrink the baseline (the panic surface only ratchets down)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::policy::FilePolicy;

    fn sites_of(src: &str) -> Vec<Site> {
        let l = lex(src);
        let kept = strip_test_code(&l.tokens);
        let lines: Vec<&str> = src.lines().collect();
        collect_sites("f.rs", &kept, &lines, &FilePolicy::default())
    }

    #[test]
    fn finds_unwrap_expect_panic_and_index() {
        let src = r#"
fn f(v: Vec<u8>, m: &Mutex<u8>) -> u8 {
    let g = m.lock().unwrap();
    let x = v.first().expect("empty");
    if v.is_empty() { panic!("boom"); }
    v[0]
}
"#;
        let sites = sites_of(src);
        let kinds: Vec<&str> = sites.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["unwrap", "expect", "panic", "slice-index"]);
        assert_eq!(sites[0].line, 3);
        assert!(sites[0].snippet.contains("m.lock().unwrap()"));
    }

    #[test]
    fn attributes_macros_and_slices_are_not_indexing() {
        let src = r#"
#[derive(Debug)]
fn f() {
    let a = vec![1, 2];
    let b: &[u8] = &[3, 4];
    let c = [5u8; 2];
    for _x in [1, 2] {}
}
"#;
        assert!(sites_of(src).is_empty(), "{:?}", sites_of(src));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); v[0]; panic!("ok in tests"); }
}
"#;
        assert!(sites_of(src).is_empty());
    }

    #[test]
    fn allow_panic_suppresses_a_site() {
        let src = "fn f() {\n    // analyze::allow(panic, \"startup only\")\n    x.unwrap();\n}\n";
        let l = lex(src);
        let policy = crate::policy::parse(&l.comments);
        let lines: Vec<&str> = src.lines().collect();
        let sites = collect_sites("f.rs", &l.tokens, &lines, &policy);
        assert!(sites.is_empty(), "{sites:?}");
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let src = "fn f() {\n    a.unwrap();\n    b.unwrap();\n}\n";
        let sites = sites_of(src);
        assert_eq!(sites.len(), 2);

        // Self-generated baseline is clean.
        let text = write_baseline(&sites);
        let baseline = parse_baseline(&text).unwrap();
        let mut r = Report::default();
        diff(&sites, &baseline, &mut r);
        assert!(r.is_clean(), "{:?}", r.findings);

        // A second `a.unwrap();` exceeds the multiset count for that
        // snippet even though line numbers shifted.
        let src2 = "fn f() {\n    a.unwrap();\n    b.unwrap();\n}\nfn g() {\n    a.unwrap();\n}\n";
        let sites2 = sites_of(src2);
        let mut r2 = Report::default();
        diff(&sites2, &baseline, &mut r2);
        assert_eq!(r2.findings.len(), 1, "{:?}", r2.findings);
        assert_eq!(r2.findings[0].rule, "new-panic-site");
        assert_eq!(r2.findings[0].line, 6);

        // Removing a site makes the baseline stale: the ratchet only
        // tightens by editing the baseline down.
        let src3 = "fn f() {\n    a.unwrap();\n}\n";
        let sites3 = sites_of(src3);
        let mut r3 = Report::default();
        diff(&sites3, &baseline, &mut r3);
        assert_eq!(r3.findings.len(), 1, "{:?}", r3.findings);
        assert_eq!(r3.findings[0].rule, "stale-baseline");
    }

    #[test]
    fn baseline_parse_errors_are_line_numbered() {
        let e = parse_baseline("1\tunwrap\tonly-three-fields\n").unwrap_err();
        assert_eq!(e.0, 1);
        let e = parse_baseline("# ok\nnope\tunwrap\tf.rs\tsnippet\n").unwrap_err();
        assert_eq!(e.0, 2);
    }
}
