//! Pass 3: pinned-constant drift.
//!
//! External contracts — wire verb bytes, protocol error codes,
//! `ServeError::wire_code()` discriminants, and the stable `ftgemm_*`
//! metric-family names — are checked against the golden manifest
//! `analyze/pins.toml` *and* against the tables in
//! `docs/ARCHITECTURE.md`. Drift in any direction fails:
//!
//! * a constant changed value → renumbering breaks deployed clients;
//! * a constant removed → same, plus the pin goes stale;
//! * a new constant not yet pinned → the manifest (a reviewed file) is
//!   how a renumber-vs-append decision becomes deliberate;
//! * docs out of date → the table readers integrate against lies.
//!
//! Band invariants from `proto.rs` are enforced structurally: error
//! codes `1..=99` must mirror a `wire_code` discriminant exactly;
//! protocol-originated codes live at `100+`.

use crate::findings::{Finding, Report};
use crate::lexer::{Tok, Token};
use crate::toml_lite::{Doc, Value};
use std::collections::BTreeMap;

const PASS: &str = "pins";

/// `name → (value, line)` extracted from source.
pub type ConstMap = BTreeMap<String, (i64, usize)>;

/// Extracts `pub const NAME: <ty> = <int>;` entries inside `mod <name> {}`.
pub fn extract_mod_consts(tokens: &[Token], mod_name: &str) -> ConstMap {
    let mut out = ConstMap::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Ident("mod".into())
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Ident(mod_name.into()))
        {
            // Find the mod body and scan consts inside it.
            let mut j = i + 2;
            while j < tokens.len() && tokens[j].tok != Tok::Punct('{') {
                j += 1;
            }
            let mut depth = 0usize;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(kw) if kw == "const" => {
                        if let Some((name, value, line)) = const_at(tokens, j) {
                            out.insert(name, (value, line));
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Parses `const NAME: ty = <int>;` with the `const` keyword at `j`.
fn const_at(tokens: &[Token], j: usize) -> Option<(String, i64, usize)> {
    let name = match tokens.get(j + 1).map(|t| &t.tok) {
        Some(Tok::Ident(n)) => n.clone(),
        _ => return None,
    };
    // Scan to `=`, then expect an integer literal.
    let mut k = j + 2;
    while k < tokens.len() && tokens[k].tok != Tok::Punct('=') && tokens[k].tok != Tok::Punct(';') {
        k += 1;
    }
    if tokens.get(k).map(|t| &t.tok) != Some(&Tok::Punct('=')) {
        return None;
    }
    match tokens.get(k + 1).map(|t| &t.tok) {
        Some(Tok::Literal(text)) => {
            let value = parse_int(text)?;
            Some((name, value, tokens[k + 1].line))
        }
        _ => None,
    }
}

/// Extracts the `ServeError::<Variant> ... => <int>` arms of
/// `fn wire_code`.
pub fn extract_wire_codes(tokens: &[Token]) -> ConstMap {
    let mut out = ConstMap::new();
    let mut i = 0usize;
    // Find `fn wire_code`.
    while i + 1 < tokens.len() {
        if tokens[i].tok == Tok::Ident("fn".into())
            && tokens[i + 1].tok == Tok::Ident("wire_code".into())
        {
            break;
        }
        i += 1;
    }
    if i + 1 >= tokens.len() {
        return out;
    }
    // Scan its body for `ServeError :: Name ... => Literal`.
    let mut depth = 0usize;
    let mut j = i;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                if depth <= 1 {
                    break;
                }
                depth -= 1;
            }
            Tok::Ident(id)
                if id == "ServeError"
                    && tokens.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct(':'))
                    && tokens.get(j + 2).map(|t| &t.tok) == Some(&Tok::Punct(':')) =>
            {
                {
                    if let Some(Tok::Ident(variant)) = tokens.get(j + 3).map(|t| &t.tok) {
                        // Find the `=>` then the literal.
                        let mut k = j + 4;
                        while k + 1 < tokens.len() {
                            if tokens[k].tok == Tok::Punct('=')
                                && tokens[k + 1].tok == Tok::Punct('>')
                            {
                                if let Some(Tok::Literal(text)) = tokens.get(k + 2).map(|t| &t.tok)
                                {
                                    if let Some(v) = parse_int(text) {
                                        out.insert(variant.clone(), (v, tokens[k + 2].line));
                                    }
                                }
                                break;
                            }
                            if tokens[k].tok == Tok::Punct(',') {
                                break;
                            }
                            k += 1;
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// Every distinct string literal that looks like a metric-family name
/// (`ftgemm_` prefix, `[a-z0-9_]` charset), with its first line.
pub fn extract_metric_literals(tokens: &[Token]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for t in tokens {
        if let Tok::Str(s) = &t.tok {
            if s.starts_with("ftgemm_")
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                out.entry(s.clone()).or_insert(t.line);
            }
        }
    }
    out
}

fn parse_int(text: &str) -> Option<i64> {
    // `64`, `64u8`, `0x40`, `1_000` all appear in Rust source.
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .trim_end_matches(|c: char| c.is_ascii_digit() && t.contains('x'));
    if let Some(hex) = t.strip_prefix("0x") {
        return i64::from_str_radix(hex, 16).ok();
    }
    // Strip type suffixes like u8/u16/usize (digits already kept).
    let digits: String = text.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Reads a `[section]` of `name = int` pins.
fn int_section<'a>(pins: &'a Doc, section: &str) -> BTreeMap<&'a str, i64> {
    pins.get(section)
        .map(|s| {
            s.iter()
                .filter_map(|(k, v)| match v {
                    Value::Int(i) => Some((k.as_str(), *i)),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compares extracted constants against a pinned `[section]`, both ways.
pub fn check_consts(
    pins: &Doc,
    section: &str,
    extracted: &ConstMap,
    file: &str,
    what: &str,
    report: &mut Report,
) {
    let pinned = int_section(pins, section);
    if pinned.is_empty() {
        report.findings.push(Finding::new(
            PASS,
            "pin-missing-section",
            "analyze/pins.toml",
            0,
            format!("manifest has no [{section}] section, but {file} defines {what}s"),
        ));
        return;
    }
    for (name, (value, line)) in extracted {
        match pinned.get(name.as_str()) {
            None => report.findings.push(Finding::new(
                PASS,
                "pin-unpinned",
                file,
                *line,
                format!(
                    "{what} `{name}` = {value} is not in analyze/pins.toml [{section}] — \
                     append it to the manifest (new constants are appended, never renumbered)"
                ),
            )),
            Some(p) if *p != *value => report.findings.push(Finding::new(
                PASS,
                "pin-drift",
                file,
                *line,
                format!(
                    "{what} `{name}` = {value} but analyze/pins.toml [{section}] pins {p} — \
                     renumbering breaks deployed clients; restore the value or mint a new name"
                ),
            )),
            Some(_) => {}
        }
    }
    for (name, p) in &pinned {
        if !extracted.contains_key(*name) {
            report.findings.push(Finding::new(
                PASS,
                "pin-stale",
                file,
                0,
                format!(
                    "{what} `{name}` = {p} is pinned in [{section}] but no longer \
                     defined in {file} — removing a pinned constant breaks deployed clients"
                ),
            ));
        }
    }
}

/// Compares extracted metric names against a pinned string array
/// `[metrics] <key> = [...]`, both ways.
pub fn check_metrics(
    pins: &Doc,
    key: &str,
    extracted: &BTreeMap<String, usize>,
    file: &str,
    report: &mut Report,
) {
    let pinned: Vec<&str> = match pins.get("metrics").and_then(|s| s.get(key)) {
        Some(Value::StrArray(v)) => v.iter().map(|s| s.as_str()).collect(),
        _ => {
            report.findings.push(Finding::new(
                PASS,
                "pin-missing-section",
                "analyze/pins.toml",
                0,
                format!("manifest has no [metrics] {key} = [...] entry for {file}"),
            ));
            return;
        }
    };
    for (name, line) in extracted {
        if !pinned.contains(&name.as_str()) {
            report.findings.push(Finding::new(
                PASS,
                "pin-unpinned",
                file,
                *line,
                format!(
                    "metric family `{name}` is not pinned in [metrics] {key} — metric \
                     names are a dashboard contract; append it to analyze/pins.toml"
                ),
            ));
        }
    }
    for name in &pinned {
        if !extracted.contains_key(*name) {
            report.findings.push(Finding::new(
                PASS,
                "pin-stale",
                file,
                0,
                format!(
                    "metric family `{name}` is pinned in [metrics] {key} but no longer \
                     emitted by {file} — renaming a family breaks every dashboard on it"
                ),
            ));
        }
    }
}

/// Structural band invariants between the verb/error-code consts and the
/// wire_code discriminants.
pub fn check_bands(
    verbs: &ConstMap,
    error_codes: &ConstMap,
    wire_codes: &ConstMap,
    proto_file: &str,
    report: &mut Report,
) {
    // Verb bytes must be unique and fit u8.
    let mut seen: BTreeMap<i64, &str> = BTreeMap::new();
    for (name, (v, line)) in verbs {
        if !(0..=255).contains(v) {
            report.findings.push(Finding::new(
                PASS,
                "band",
                proto_file,
                *line,
                format!("verb `{name}` = {v} does not fit the u8 wire slot"),
            ));
        }
        if let Some(prev) = seen.insert(*v, name) {
            report.findings.push(Finding::new(
                PASS,
                "band",
                proto_file,
                *line,
                format!("verb byte {v} assigned to both `{prev}` and `{name}`"),
            ));
        }
    }
    // Error codes: 1..=99 must mirror a wire_code discriminant with the
    // same normalized name and value; 100+ are protocol-originated.
    for (name, (v, line)) in error_codes {
        if (1..=99).contains(v) {
            let mirror = wire_codes
                .iter()
                .find(|(w, _)| normalize(w) == normalize(name));
            match mirror {
                None => report.findings.push(Finding::new(
                    PASS,
                    "band",
                    proto_file,
                    *line,
                    format!(
                        "error code `{name}` = {v} sits in the ServeError band (1..=99) \
                         but no ServeError variant matches it"
                    ),
                )),
                Some((w, (wv, _))) if wv != v => report.findings.push(Finding::new(
                    PASS,
                    "band",
                    proto_file,
                    *line,
                    format!(
                        "error code `{name}` = {v} disagrees with \
                         ServeError::{w}.wire_code() = {wv}"
                    ),
                )),
                _ => {}
            }
        }
    }
    // Every wire_code discriminant must stay inside 1..=99.
    for (name, (v, line)) in wire_codes {
        if !(1..=99).contains(v) {
            report.findings.push(Finding::new(
                PASS,
                "band",
                "crates/ftgemm-serve/src/request.rs",
                *line,
                format!(
                    "ServeError::{name}.wire_code() = {v} escapes the request-level \
                     band (1..=99); 100+ belongs to the transport"
                ),
            ));
        }
    }
}

/// Docs cross-check: every pinned verb and wire code must appear in
/// `docs/ARCHITECTURE.md` on a line that mentions both its (normalized)
/// name and its exact number.
pub fn check_docs(
    docs_text: &str,
    docs_file: &str,
    verbs: &ConstMap,
    wire_codes: &ConstMap,
    report: &mut Report,
) {
    let lines: Vec<(String, Vec<i64>)> = docs_text
        .lines()
        .map(|l| (normalize(l), line_ints(l)))
        .collect();
    let mut check = |name: &str, value: i64, what: &str| {
        let norm = normalize(name);
        let ok = lines
            .iter()
            .any(|(l, ints)| l.contains(&norm) && ints.contains(&value));
        if !ok {
            report.findings.push(Finding::new(
                PASS,
                "docs-drift",
                docs_file,
                0,
                format!(
                    "{what} `{name}` = {value} is pinned but {docs_file} has no line \
                     mentioning both the name and the number — update the docs table"
                ),
            ));
        }
    };
    for (name, (v, _)) in verbs {
        check(name, *v, "verb");
    }
    for (name, (v, _)) in wire_codes {
        check(name, *v, "wire code");
    }
}

/// Lowercase, alphanumerics only: `SERVER_HELLO` == `ServerHello`.
fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// All the standalone integers on a line.
fn line_ints(l: &str) -> Vec<i64> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev_alpha = false;
    for c in l.chars() {
        if c.is_ascii_digit() && !prev_alpha {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                if let Ok(v) = cur.parse() {
                    out.push(v);
                }
                cur.clear();
            }
            prev_alpha = c.is_ascii_alphanumeric();
        }
    }
    if let Ok(v) = cur.parse() {
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::toml_lite;

    const PROTO_FIXTURE: &str = r#"
        pub mod verb {
            pub const HELLO: u8 = 1;
            pub const ERROR: u8 = 15;
        }
        pub mod error_code {
            pub const SHAPE: u16 = 1;
            pub const MALFORMED_FRAME: u16 = 101;
        }
    "#;

    const REQUEST_FIXTURE: &str = r#"
        impl ServeError {
            pub fn wire_code(&self) -> u16 {
                match self {
                    ServeError::Shape(_) => 1,
                    ServeError::Closed => 3,
                }
            }
        }
    "#;

    #[test]
    fn extracts_mod_consts_and_wire_codes() {
        let l = lex(PROTO_FIXTURE);
        let verbs = extract_mod_consts(&l.tokens, "verb");
        assert_eq!(verbs["HELLO"].0, 1);
        assert_eq!(verbs["ERROR"].0, 15);
        let codes = extract_mod_consts(&l.tokens, "error_code");
        assert_eq!(codes["MALFORMED_FRAME"].0, 101);

        let r = lex(REQUEST_FIXTURE);
        let wires = extract_wire_codes(&r.tokens);
        assert_eq!(wires["Shape"].0, 1);
        assert_eq!(wires["Closed"].0, 3);
    }

    #[test]
    fn matching_pins_are_clean() {
        let pins = toml_lite::parse("[verbs]\nHELLO = 1\nERROR = 15\n").unwrap();
        let l = lex(PROTO_FIXTURE);
        let verbs = extract_mod_consts(&l.tokens, "verb");
        let mut report = Report::default();
        check_consts(&pins, "verbs", &verbs, "proto.rs", "verb", &mut report);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn drift_unpinned_and_stale_all_fire() {
        // HELLO renumbered, GOODBYE stale, ERROR unpinned.
        let pins = toml_lite::parse("[verbs]\nHELLO = 2\nGOODBYE = 14\n").unwrap();
        let l = lex(PROTO_FIXTURE);
        let verbs = extract_mod_consts(&l.tokens, "verb");
        let mut report = Report::default();
        check_consts(&pins, "verbs", &verbs, "proto.rs", "verb", &mut report);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"pin-drift"));
        assert!(rules.contains(&"pin-stale"));
        assert!(rules.contains(&"pin-unpinned"));
        // The drift finding names the file and line of the constant.
        let drift = report
            .findings
            .iter()
            .find(|f| f.rule == "pin-drift")
            .unwrap();
        assert_eq!(drift.file, "proto.rs");
        assert!(drift.line > 0);
    }

    #[test]
    fn metric_names_compare_both_ways() {
        let pins =
            toml_lite::parse("[metrics]\nserve = [\"ftgemm_a_total\", \"ftgemm_gone\"]\n").unwrap();
        let l = lex(r#"fn f() { emit("ftgemm_a_total"); emit("ftgemm_new_total"); }"#);
        let extracted = extract_metric_literals(&l.tokens);
        let mut report = Report::default();
        check_metrics(&pins, "serve", &extracted, "export.rs", &mut report);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules.len(), 2);
        assert!(rules.contains(&"pin-unpinned")); // ftgemm_new_total
        assert!(rules.contains(&"pin-stale")); // ftgemm_gone
    }

    #[test]
    fn band_checks_mirror_serveerror_discriminants() {
        let l = lex(PROTO_FIXTURE);
        let verbs = extract_mod_consts(&l.tokens, "verb");
        let codes = extract_mod_consts(&l.tokens, "error_code");
        let wires = extract_wire_codes(&lex(REQUEST_FIXTURE).tokens);
        let mut report = Report::default();
        check_bands(&verbs, &codes, &wires, "proto.rs", &mut report);
        assert!(report.is_clean(), "{:?}", report.findings);

        // Now a low-band error code that disagrees with the wire code.
        let bad = lex("pub mod error_code { pub const SHAPE: u16 = 7; }\n\
             pub mod verb { pub const HELLO: u8 = 1; }");
        let bad_codes = extract_mod_consts(&bad.tokens, "error_code");
        let bad_verbs = extract_mod_consts(&bad.tokens, "verb");
        let mut r2 = Report::default();
        check_bands(&bad_verbs, &bad_codes, &wires, "proto.rs", &mut r2);
        assert_eq!(r2.findings.len(), 1);
        assert!(r2.findings[0].message.contains("disagrees"));
    }

    #[test]
    fn docs_check_wants_name_and_number_on_one_line() {
        let l = lex(PROTO_FIXTURE);
        let verbs = extract_mod_consts(&l.tokens, "verb");
        let wires = ConstMap::new();
        let docs_ok = "| `Hello` | 1 | client |\nanything `Error` goes as 15.";
        let mut r = Report::default();
        check_docs(docs_ok, "ARCH.md", &verbs, &wires, &mut r);
        assert!(r.is_clean(), "{:?}", r.findings);

        let docs_bad = "| `Hello` | 2 | renumbered! |"; // wrong number, no Error
        let mut r2 = Report::default();
        check_docs(docs_bad, "ARCH.md", &verbs, &wires, &mut r2);
        assert_eq!(r2.findings.len(), 2);
        assert!(r2.findings.iter().all(|f| f.rule == "docs-drift"));
    }

    #[test]
    fn normalized_names_match_across_cases() {
        assert_eq!(normalize("SERVER_HELLO"), normalize("ServerHello"));
        assert_ne!(normalize("HELLO"), normalize("SERVER_HELLO"));
    }
}
