//! Pass 2: lock-acquisition order.
//!
//! Extracts every blocking `.lock()` acquisition per function, names the
//! lock by the receiver's last path component (`self.chan.state.lock()` →
//! `state`), and records an ordered edge `A → B` whenever B is acquired
//! after A inside one function body (a conservative over-approximation:
//! guards are assumed held to the end of the function). The workspace
//! acquisition graph must be acyclic; a cycle — including the 2-cycle of
//! an inconsistent pairwise order — is the classic deadlock shape and
//! fails the build, naming one witness site per edge.
//!
//! `try_lock` never blocks and is ignored. A site that is provably fine
//! (the first guard is dropped before the second acquisition) can carry
//! `analyze::allow(lock-order, reason)`, which suppresses the edges
//! *originating* at that acquisition.

use crate::findings::{Finding, Report};
use crate::lexer::{Tok, Token};
use crate::policy::FilePolicy;
use std::collections::{BTreeMap, BTreeSet};

const PASS: &str = "locks";

/// One acquisition edge `from → to` with a witness site (file, line of the
/// second acquisition, function name).
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    pub func: String,
}

/// The workspace acquisition graph under construction.
#[derive(Debug, Default)]
pub struct LockGraph {
    pub edges: Vec<Edge>,
    /// Total acquisitions seen (for the checked-sites count).
    pub acquisitions: usize,
}

/// One function's acquisitions, in source order.
#[derive(Debug)]
struct Acq {
    name: String,
    line: usize,
}

/// Scans a file's (test-stripped) tokens and adds its edges to the graph.
pub fn scan_file(file: &str, tokens: &[Token], policy: &FilePolicy, graph: &mut LockGraph) {
    for (func, body) in function_bodies(tokens) {
        let acqs = acquisitions(body);
        graph.acquisitions += acqs.len();
        for i in 0..acqs.len() {
            for j in (i + 1)..acqs.len() {
                if acqs[i].name == acqs[j].name {
                    continue;
                }
                if policy.allowed("lock-order", acqs[i].line) {
                    continue;
                }
                graph.edges.push(Edge {
                    from: acqs[i].name.clone(),
                    to: acqs[j].name.clone(),
                    file: file.to_string(),
                    line: acqs[j].line,
                    func: func.clone(),
                });
            }
        }
    }
}

/// Cycle detection over the completed graph.
pub fn finish(graph: &LockGraph, report: &mut Report) {
    // Adjacency with one witness edge per (from, to).
    let mut adj: BTreeMap<&str, BTreeMap<&str, &Edge>> = BTreeMap::new();
    for e in &graph.edges {
        adj.entry(&e.from).or_default().entry(&e.to).or_insert(e);
    }

    // Inconsistent pairwise order (2-cycles) get a dedicated message.
    for (a, outs) in &adj {
        for (b, e_ab) in outs {
            if a < b {
                if let Some(e_ba) = adj.get(b).and_then(|m| m.get(a)) {
                    report.findings.push(Finding::new(
                        PASS,
                        "lock-order-conflict",
                        e_ab.file.clone(),
                        e_ab.line,
                        format!(
                            "inconsistent lock order: `{a}` then `{b}` here (fn {}), but \
                             `{b}` then `{a}` at {}:{} (fn {}) — concurrent callers can \
                             deadlock",
                            e_ab.func, e_ba.file, e_ba.line, e_ba.func
                        ),
                    ));
                }
            }
        }
    }

    // Longer cycles (2-cycles are fully covered above; DFS reports only
    // length >= 3): path-stack DFS, each cycle reported once,
    // canonicalized by its smallest node.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        let mut stack: Vec<&str> = vec![start];
        let mut onpath: BTreeSet<&str> = [start].into();
        dfs(
            start,
            start,
            &adj,
            &mut stack,
            &mut onpath,
            &mut reported,
            report,
        );
    }
}

fn dfs<'a>(
    start: &'a str,
    cur: &'a str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, &'a Edge>>,
    stack: &mut Vec<&'a str>,
    onpath: &mut BTreeSet<&'a str>,
    reported: &mut BTreeSet<Vec<String>>,
    report: &mut Report,
) {
    let Some(outs) = adj.get(cur) else { return };
    for (&next, edge) in outs {
        if next == start {
            if stack.len() >= 3 {
                // Canonical form: rotate so the smallest node is first.
                let mut cyc: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
                let min_pos = cyc
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cyc.rotate_left(min_pos);
                if reported.insert(cyc.clone()) {
                    report.findings.push(Finding::new(
                        PASS,
                        "lock-cycle",
                        edge.file.clone(),
                        edge.line,
                        format!(
                            "lock-order cycle: {} → {} (closing edge in fn {}) — \
                             acquisition order must form a DAG",
                            cyc.join(" → "),
                            cyc[0],
                            edge.func
                        ),
                    ));
                }
            }
            continue;
        }
        if onpath.contains(next) {
            continue;
        }
        if stack.len() >= 8 {
            continue; // bound pathological graphs
        }
        stack.push(next);
        onpath.insert(next);
        dfs(start, next, adj, stack, onpath, reported, report);
        stack.pop();
        onpath.remove(next);
    }
}

/// Splits a token stream into `(function name, body tokens)` pairs.
/// Closures and nested items stay part of the enclosing function.
fn function_bodies(tokens: &[Token]) -> Vec<(String, &[Token])> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Ident("fn".into()) {
            let name = match tokens.get(i + 1).map(|t| &t.tok) {
                Some(Tok::Ident(n)) => n.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // Find the body's '{', skipping the signature. A ';' first
            // means a trait/extern declaration with no body.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut body_start = None;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('<') => angle += 1,
                    Tok::Punct('>') => angle -= 1,
                    Tok::Punct('(') => paren += 1,
                    Tok::Punct(')') => paren -= 1,
                    Tok::Punct(';') if paren == 0 => break,
                    Tok::Punct('{') if paren == 0 && angle <= 0 => {
                        body_start = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = body_start else {
                i = j + 1;
                continue;
            };
            // Matching close brace.
            let mut depth = 0usize;
            let mut k = open;
            while k < tokens.len() {
                match tokens[k].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = k.min(tokens.len());
            out.push((name, &tokens[open..end]));
            // Nested fns inside this body are *also* scanned on their own
            // (their acquisitions double-count into the outer fn — the
            // conservative direction), so just continue past the `fn` kw.
            i = open + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Extracts `.lock()` acquisitions (receiver last component + line).
fn acquisitions(body: &[Token]) -> Vec<Acq> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 3 < body.len() {
        if body[i].tok == Tok::Punct('.')
            && body[i + 1].tok == Tok::Ident("lock".into())
            && body[i + 2].tok == Tok::Punct('(')
            && body[i + 3].tok == Tok::Punct(')')
        {
            if let Some(name) = receiver_before(body, i) {
                out.push(Acq {
                    name,
                    line: body[i + 1].line,
                });
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    out
}

/// The identifier component directly before the `.` at index `dot`.
fn receiver_before(body: &[Token], dot: usize) -> Option<String> {
    let mut end = dot.checked_sub(1)?;
    // Skip a call or index group: `groups[node].lock()`, `cell().lock()`.
    loop {
        match &body[end].tok {
            Tok::Punct(')') | Tok::Punct(']') => {
                let close = match body[end].tok {
                    Tok::Punct(')') => '(',
                    _ => '[',
                };
                let open_c = close;
                let close_c = match open_c {
                    '(' => ')',
                    _ => ']',
                };
                let mut depth = 0i32;
                loop {
                    match &body[end].tok {
                        Tok::Punct(c) if *c == close_c => depth += 1,
                        Tok::Punct(c) if *c == open_c => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    end = end.checked_sub(1)?;
                }
                end = end.checked_sub(1)?;
            }
            Tok::Ident(name) => {
                if name == "self" {
                    return None;
                }
                return Some(name.clone());
            }
            _ => return None,
        }
    }
}

/// Convenience for tests and the workspace driver: number of distinct
/// ordered pairs (the graph's edge set size after dedup).
pub fn distinct_edges(graph: &LockGraph) -> usize {
    graph
        .edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect::<BTreeSet<_>>()
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::policy;

    fn run(files: &[(&str, &str)]) -> Report {
        let mut graph = LockGraph::default();
        let mut report = Report::default();
        for (name, src) in files {
            let lexed = lex(src);
            let tokens = strip_test_code(&lexed.tokens);
            let pol = policy::parse(&lexed.comments);
            scan_file(name, &tokens, &pol, &mut graph);
        }
        finish(&graph, &mut report);
        report
    }

    #[test]
    fn consistent_order_across_functions_is_clean() {
        let r = run(&[(
            "a.rs",
            "fn f(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n\
             fn g(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn inconsistent_pairwise_order_is_a_conflict() {
        let r = run(&[(
            "a.rs",
            "fn f(s: &S) { let a = s.alpha.lock(); let b = s.beta.lock(); }\n\
             fn g(s: &S) { let b = s.beta.lock(); let a = s.alpha.lock(); }",
        )]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "lock-order-conflict");
        assert!(r.findings[0].message.contains("alpha"));
        assert!(r.findings[0].message.contains("beta"));
    }

    #[test]
    fn three_cycle_across_files_is_found() {
        let r = run(&[
            ("a.rs", "fn f(s: &S) { s.a.lock(); s.b.lock(); }"),
            ("b.rs", "fn g(s: &S) { s.b.lock(); s.c.lock(); }"),
            ("c.rs", "fn h(s: &S) { s.c.lock(); s.a.lock(); }"),
        ]);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "lock-cycle");
        assert!(r.findings[0].message.contains("a → b → c"));
    }

    #[test]
    fn allow_suppresses_edges_from_the_annotated_acquisition() {
        let r = run(&[(
            "a.rs",
            "fn f(s: &S) { s.alpha.lock(); s.beta.lock(); }\n\
             fn g(s: &S) {\n\
             // analyze::allow(lock-order, \"beta guard dropped before alpha\")\n\
             s.beta.lock();\n s.alpha.lock(); }",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn try_lock_and_relocking_same_name_are_ignored() {
        let r = run(&[(
            "a.rs",
            "fn f(s: &S) { s.a.lock(); s.a.lock(); if let Some(g) = s.b.try_lock() {} }",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn indexed_receivers_get_the_field_name() {
        let l = lex("fn f(s: &S) { s.groups[node].lock(); }");
        let bodies = function_bodies(&l.tokens);
        assert_eq!(bodies.len(), 1);
        let acqs = acquisitions(bodies[0].1);
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].name, "groups");
    }

    #[test]
    fn locks_in_different_functions_do_not_create_edges() {
        let r = run(&[(
            "a.rs",
            "fn f(s: &S) { s.alpha.lock(); }\nfn g(s: &S) { s.beta.lock(); }",
        )]);
        assert!(r.is_clean());
    }
}
