//! Pass 1: atomic-ordering policy.
//!
//! Checks every `Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}`
//! site in non-test code against the file's declared policy
//! (`analyze::policy(atomics: ...)` / `analyze::policy(publish: ...)`):
//!
//! * `SeqCst` is banned workspace-wide without an
//!   `analyze::allow(seqcst, reason)` — on this codebase's publication
//!   patterns (single-cell flags, cutoffs, slots) Release/Acquire is
//!   always sufficient, and a stray SeqCst hides the *actual* protocol.
//! * In `atomics: relaxed` files (counter/stat modules), any stronger
//!   ordering is a finding — strength there implies a synchronization
//!   role the module is documented not to have.
//! * Declared publication cells must store with `Release`/`AcqRel` and
//!   load with `Acquire`/`AcqRel`; a `Relaxed` on a publish cell is a
//!   finding at the site.
//! * Workspace-wide, every canonical publish cell needs **both** a
//!   release-side store and an acquire-side load — a Release store no
//!   thread ever Acquire-loads synchronizes nothing.
//!
//! `std::cmp::Ordering` never collides: only the five atomic variant
//! names are matched.

use crate::findings::{Finding, Report};
use crate::lexer::{Tok, Token};
use crate::policy::{AtomicsPolicy, FilePolicy};
use std::collections::BTreeMap;

const PASS: &str = "atomics";

/// The atomic ordering variants (cmp::Ordering's Less/Equal/Greater are
/// deliberately absent).
const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// What kind of atomic access a site is.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Access {
    Load,
    Store,
    /// Read-modify-write: swap, fetch_*, compare_exchange*.
    Rmw,
    /// `Ordering::` token in a position we could not classify (passed
    /// through a helper, stored in a variable, ...). Only the SeqCst ban
    /// and relaxed-only policy apply.
    Unknown,
}

/// One `Ordering::` site.
#[derive(Debug)]
pub struct Site {
    pub line: usize,
    pub variant: &'static str,
    pub receiver: Option<String>,
    method: Option<String>,
}

/// Aggregated per-canonical-cell evidence for the workspace pairing check.
#[derive(Debug, Default)]
pub struct CellEvidence {
    /// (file, line) of release-side stores (Release/AcqRel/allowed SeqCst).
    pub release_stores: Vec<(String, usize)>,
    /// (file, line) of acquire-side loads.
    pub acquire_loads: Vec<(String, usize)>,
    /// Any site at all (for the "declared but unused" check).
    pub sites: Vec<(String, usize)>,
}

/// Per-file analysis: site checks, plus evidence merged into `cells` for
/// the cross-file pairing check run by [`finish`].
pub fn check_file(
    file: &str,
    tokens: &[Token],
    policy: &FilePolicy,
    cells: &mut BTreeMap<String, CellEvidence>,
    report: &mut Report,
) -> usize {
    let sites = extract_sites(tokens);
    let n = sites.len();
    for s in &sites {
        let canonical = s
            .receiver
            .as_deref()
            .and_then(|r| policy.publish_canonical(r));

        // Workspace-wide SeqCst ban.
        if s.variant == "SeqCst" && !policy.allowed("seqcst", s.line) {
            report.findings.push(Finding::new(
                PASS,
                "seqcst",
                file,
                s.line,
                format!(
                    "SeqCst on `{}` — Release/Acquire suffices for every publication \
                     pattern in this workspace; annotate `analyze::allow(seqcst, reason)` \
                     if this site truly needs a total order",
                    s.receiver.as_deref().unwrap_or("<unknown>")
                ),
            ));
        }

        // Relaxed-only modules.
        if policy.atomics == AtomicsPolicy::RelaxedOnly
            && s.variant != "Relaxed"
            && canonical.is_none()
            && !policy.allowed("ordering", s.line)
        {
            report.findings.push(Finding::new(
                PASS,
                "relaxed-only",
                file,
                s.line,
                format!(
                    "Ordering::{} in a `atomics: relaxed` module (receiver `{}`) — \
                     counters must not imply synchronization; declare the cell \
                     `publish` if it really publishes",
                    s.variant,
                    s.receiver.as_deref().unwrap_or("<unknown>")
                ),
            ));
        }

        // Publication cells: per-site strength + evidence collection.
        if let Some(cell) = canonical {
            let access = s.classify();
            let ev = cells.entry(cell.to_string()).or_default();
            ev.sites.push((file.to_string(), s.line));
            let strong_store = matches!(s.variant, "Release" | "AcqRel" | "SeqCst");
            let strong_load = matches!(s.variant, "Acquire" | "AcqRel" | "SeqCst");
            match access {
                Access::Store if strong_store => {
                    ev.release_stores.push((file.to_string(), s.line));
                }
                Access::Load if strong_load => {
                    ev.acquire_loads.push((file.to_string(), s.line));
                }
                Access::Rmw => {
                    // An AcqRel (or SeqCst) RMW is both sides at once.
                    if strong_store {
                        ev.release_stores.push((file.to_string(), s.line));
                    }
                    if strong_load {
                        ev.acquire_loads.push((file.to_string(), s.line));
                    }
                }
                _ => {}
            }
            if s.variant == "Relaxed" && !policy.allowed("ordering", s.line) {
                report.findings.push(Finding::new(
                    PASS,
                    "publish-relaxed",
                    file,
                    s.line,
                    format!(
                        "Relaxed {} on publication cell `{}` (canonical `{cell}`) — \
                         publication requires a Release store paired with Acquire loads",
                        s.method.as_deref().unwrap_or("access"),
                        s.receiver.as_deref().unwrap_or("<unknown>"),
                    ),
                ));
            }
        }
    }
    n
}

/// Cross-file pairing check, after every file has been fed through
/// [`check_file`].
pub fn finish(cells: &BTreeMap<String, CellEvidence>, report: &mut Report) {
    for (cell, ev) in cells {
        if ev.sites.is_empty() {
            continue;
        }
        if ev.release_stores.is_empty() {
            let (file, line) = ev.sites[0].clone();
            report.findings.push(Finding::new(
                PASS,
                "publish-no-release-store",
                file,
                line,
                format!(
                    "publication cell `{cell}` has no Release-side store anywhere in \
                     the workspace — its Acquire loads synchronize with nothing"
                ),
            ));
        }
        if ev.acquire_loads.is_empty() {
            let (file, line) = ev
                .release_stores
                .first()
                .cloned()
                .unwrap_or_else(|| ev.sites[0].clone());
            report.findings.push(Finding::new(
                PASS,
                "publish-no-acquire-load",
                file,
                line,
                format!(
                    "publication cell `{cell}` has a Release store but no Acquire load \
                     anywhere in the workspace — nothing observes the publication"
                ),
            ));
        }
    }
}

/// Cells declared in a file's policy but never seen at any site are stale
/// declarations; call once per file after the workspace sweep.
pub fn check_unused_declarations(
    file: &str,
    policy: &FilePolicy,
    cells: &BTreeMap<String, CellEvidence>,
    report: &mut Report,
) {
    for cell in &policy.publish {
        let used = cells
            .get(&cell.canonical)
            .map(|ev| ev.sites.iter().any(|(f, _)| f == file))
            .unwrap_or(false);
        if !used {
            report.findings.push(Finding::new(
                PASS,
                "publish-unused",
                file,
                0,
                format!(
                    "publish cell `{}` is declared here but no atomic access to it \
                     appears in this file — stale declaration",
                    cell.local
                ),
            ));
        }
    }
}

impl Site {
    fn classify(&self) -> Access {
        match self.method.as_deref() {
            Some("load") => Access::Load,
            Some("store") => Access::Store,
            Some(m)
                if m == "swap"
                    || m == "compare_exchange"
                    || m == "compare_exchange_weak"
                    || m == "fetch_update"
                    || m.starts_with("fetch_") =>
            {
                Access::Rmw
            }
            _ => Access::Unknown,
        }
    }
}

/// Finds every `Ordering::<variant>` site and reconstructs its calling
/// context (method name + receiver's last path component) by walking the
/// token stream backwards to the unmatched `(` that opened the call.
pub fn extract_sites(tokens: &[Token]) -> Vec<Site> {
    let mut sites = Vec::new();
    let mut i = 0usize;
    while i + 3 < tokens.len() + 1 {
        // Pattern: Ident("Ordering") ':' ':' Ident(variant)
        if i + 3 < tokens.len()
            && tokens[i].tok == Tok::Ident("Ordering".into())
            && tokens[i + 1].tok == Tok::Punct(':')
            && tokens[i + 2].tok == Tok::Punct(':')
        {
            if let Tok::Ident(v) = &tokens[i + 3].tok {
                if let Some(variant) = VARIANTS.iter().find(|k| *k == v) {
                    let (method, receiver) = call_context(tokens, i);
                    sites.push(Site {
                        line: tokens[i + 3].line,
                        variant,
                        receiver,
                        method,
                    });
                    i += 4;
                    continue;
                }
            }
        }
        i += 1;
    }
    sites
}

/// Walks backwards from token index `at` to the `(` that opened the
/// enclosing call; returns (method, receiver-last-component).
fn call_context(tokens: &[Token], at: usize) -> (Option<String>, Option<String>) {
    let mut depth = 0i32;
    let mut j = at;
    while j > 0 {
        j -= 1;
        match &tokens[j].tok {
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                if depth == 0 {
                    if tokens[j].tok != Tok::Punct('(') {
                        return (None, None);
                    }
                    // tokens[j] is the call's '('; method is the ident
                    // before it, receiver the ident before the '.'.
                    if j == 0 {
                        return (None, None);
                    }
                    let method = match &tokens[j - 1].tok {
                        Tok::Ident(m) => m.clone(),
                        _ => return (None, None),
                    };
                    let receiver = if j >= 3 && tokens[j - 2].tok == Tok::Punct('.') {
                        last_path_component(tokens, j - 3)
                    } else {
                        None
                    };
                    return (Some(method), receiver);
                }
                depth -= 1;
            }
            // A statement boundary before finding the '(' means the
            // Ordering token is not a call argument (e.g. `let o =
            // Ordering::Relaxed;`).
            Tok::Punct(';') if depth == 0 => return (None, None),
            _ => {}
        }
    }
    (None, None)
}

/// The last meaningful identifier of the receiver chain ending at `end`:
/// `self.inner.cutoff` → `cutoff`; `shard` → `shard`. Skips a closing
/// paren group (`self.cell().store(..)` → `cell`).
fn last_path_component(tokens: &[Token], mut end: usize) -> Option<String> {
    // Skip one trailing call: `foo()` → name `foo`.
    if tokens.get(end).map(|t| &t.tok) == Some(&Tok::Punct(')')) {
        let mut depth = 0i32;
        loop {
            match tokens.get(end).map(|t| &t.tok) {
                Some(Tok::Punct(')')) => depth += 1,
                Some(Tok::Punct('(')) => {
                    depth -= 1;
                    if depth == 0 {
                        end = end.checked_sub(1)?;
                        break;
                    }
                }
                None => return None,
                _ => {}
            }
            end = end.checked_sub(1)?;
        }
    }
    match tokens.get(end).map(|t| &t.tok) {
        Some(Tok::Ident(name)) if name != "self" => Some(name.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::policy;

    fn run(src: &str) -> Report {
        let lexed = lex(src);
        let tokens = strip_test_code(&lexed.tokens);
        let pol = policy::parse(&lexed.comments);
        let mut report = Report::default();
        let mut cells = BTreeMap::new();
        check_file("fixture.rs", &tokens, &pol, &mut cells, &mut report);
        finish(&cells, &mut report);
        check_unused_declarations("fixture.rs", &pol, &cells, &mut report);
        report
    }

    #[test]
    fn site_extraction_sees_receiver_and_method() {
        let l = lex("self.cutoff.store(v.to_bits(), Ordering::Release);");
        let sites = extract_sites(&l.tokens);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].variant, "Release");
        assert_eq!(sites[0].receiver.as_deref(), Some("cutoff"));
        assert_eq!(sites[0].method.as_deref(), Some("store"));
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let l = lex("a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)");
        assert!(extract_sites(&l.tokens).is_empty());
    }

    #[test]
    fn seqcst_without_allow_is_a_finding() {
        let r = run("fn f(x: &AtomicBool) { x.store(true, Ordering::SeqCst); }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "seqcst");
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn seqcst_with_allow_is_clean() {
        let r = run("fn f(x: &AtomicBool) {\n\
             // analyze::allow(seqcst, \"total order against the watchdog\")\n\
             x.store(true, Ordering::SeqCst);\n}");
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn relaxed_only_policy_flags_stronger_orderings() {
        let r = run("// analyze::policy(atomics: relaxed)\n\
             fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Release); }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "relaxed-only");
    }

    #[test]
    fn relaxed_only_policy_accepts_relaxed_counters() {
        let r = run("// analyze::policy(atomics: relaxed)\n\
             fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }");
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn publish_cell_with_relaxed_store_is_a_finding() {
        let r = run("// analyze::policy(publish: cutoff)\n\
             fn p(c: &C) { c.cutoff.store(1, Ordering::Relaxed); }\n\
             fn g(c: &C) -> u64 { c.cutoff.load(Ordering::Acquire) }");
        assert!(r.findings.iter().any(|f| f.rule == "publish-relaxed"));
        // The Relaxed store is not release-side, so pairing also fails.
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "publish-no-release-store"));
    }

    #[test]
    fn publish_release_store_without_acquire_load_is_a_finding() {
        let r = run("// analyze::policy(publish: flag)\n\
             fn p(c: &C) { c.flag.store(true, Ordering::Release); }");
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "publish-no-acquire-load");
    }

    #[test]
    fn publish_release_acquire_pair_is_clean() {
        let r = run("// analyze::policy(publish: flag)\n\
             fn p(c: &C) { c.flag.store(true, Ordering::Release); }\n\
             fn g(c: &C) -> bool { c.flag.load(Ordering::Acquire) }");
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn acqrel_rmw_counts_as_both_sides() {
        let r = run("// analyze::policy(publish: count)\n\
             fn p(c: &C) { c.count.fetch_add(1, Ordering::AcqRel); }");
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn unused_publish_declaration_is_a_finding() {
        let r = run("// analyze::policy(publish: ghost)\nfn f() {}\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "publish-unused");
    }

    #[test]
    fn test_code_is_exempt() {
        let r = run("#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicBool) { \
             x.store(true, Ordering::SeqCst); }\n}");
        assert!(r.is_clean(), "{:?}", r.findings);
    }
}
