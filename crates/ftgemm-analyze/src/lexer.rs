//! A lightweight Rust lexer: just enough tokenization for invariant
//! checking — comments, string/char/lifetime disambiguation, raw strings —
//! without a full parse.
//!
//! The passes never need expression structure, only a faithful token
//! stream where `Ordering::Release` inside a string literal or a comment
//! does **not** look like an atomic-ordering site.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`self`, `fn`, `Ordering`, ...).
    Ident(String),
    /// A string literal (normal, raw, or byte), with its unescaped-enough
    /// contents — used by the pins pass to find metric-family names.
    Str(String),
    /// A char, byte, or numeric literal, with its source text (the pins
    /// pass reads pinned integer values out of these).
    Literal(String),
    /// A lifetime (`'a`) — kept distinct so it is never a char literal.
    Lifetime,
    /// Single punctuation character: `. : ( ) [ ] { } # ! , ; = < > &` ...
    Punct(char),
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// A comment (line or block), with the 1-indexed line it starts on and its
/// text without the `//` / `/*` markers. Policy and allow annotations are
/// parsed out of these.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// Lexer output: the token stream and every comment, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes Rust source. Unterminated constructs are tolerated (consume to
/// EOF) — the analyzer must never panic on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && j + 1 < b.len() && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < b.len() && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: b[start..end].iter().collect(),
                });
                i = j;
            }
            '"' => {
                let (s, j, nl) = lex_string(&b, i);
                out.tokens.push(Token {
                    tok: Tok::Str(s),
                    line,
                });
                line += nl;
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                let (tok, j, nl) = lex_prefixed_literal(&b, i);
                out.tokens.push(Token { tok, line });
                line += nl;
                i = j;
            }
            '\'' => {
                // Lifetime iff followed by ident-start NOT closed by a
                // quote right after ('a vs 'a').
                if i + 1 < b.len()
                    && (is_ident_start(b[i + 1]))
                    && !(i + 2 < b.len() && b[i + 2] == '\'')
                {
                    let mut j = i + 1;
                    while j < b.len() && is_ident(b[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: consume to closing quote, honoring \'.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        if j < b.len() && b[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Literal(b[i..(j + 1).min(b.len())].iter().collect()),
                        line,
                    });
                    i = (j + 1).min(b.len());
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (is_ident(b[j]) || b[j] == '.') {
                    // Stop a number at `..` (range) and at `.method()`.
                    if b[j] == '.' && (j + 1 >= b.len() || !b[j + 1].is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Literal(b[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < b.len() && is_ident(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(b[i..j].iter().collect()),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when `b[i..]` starts a raw string (`r"`, `r#"`), byte string
/// (`b"`, `br"`, `br#"`), or byte char (`b'`) rather than an identifier.
fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < b.len() && b[j] == '\'' {
            return true;
        }
    }
    if j < b.len() && b[j] == 'r' {
        j += 1;
        while j < b.len() && b[j] == '#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == '"'
}

/// Lexes a normal `"..."` string starting at `i`. Returns (contents, next
/// index, newlines consumed).
fn lex_string(b: &[char], i: usize) -> (String, usize, usize) {
    let mut s = String::new();
    let mut j = i + 1;
    let mut nl = 0usize;
    while j < b.len() && b[j] != '"' {
        if b[j] == '\\' && j + 1 < b.len() {
            // Keep escaped chars verbatim-ish; passes only match plain
            // ASCII names, so decoding escapes precisely is unnecessary.
            s.push(b[j + 1]);
            if b[j + 1] == '\n' {
                nl += 1;
            }
            j += 2;
            continue;
        }
        if b[j] == '\n' {
            nl += 1;
        }
        s.push(b[j]);
        j += 1;
    }
    (s, (j + 1).min(b.len()), nl)
}

/// Lexes an `r"..."` / `r#"..."#` / `b"..."` / `b'x'` literal at `i`.
fn lex_prefixed_literal(b: &[char], i: usize) -> (Tok, usize, usize) {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j < b.len() && b[j] == '\'' {
            // Byte char b'x'.
            let mut k = j + 1;
            while k < b.len() && b[k] != '\'' {
                if b[k] == '\\' {
                    k += 1;
                }
                k += 1;
            }
            return (
                Tok::Literal(b[i..(k + 1).min(b.len())].iter().collect()),
                (k + 1).min(b.len()),
                0,
            );
        }
    }
    let raw = j < b.len() && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    // b[j] == '"'
    j += 1;
    let start = j;
    let mut nl = 0usize;
    loop {
        if j >= b.len() {
            break;
        }
        if b[j] == '\n' {
            nl += 1;
        }
        if b[j] == '"' {
            if !raw && hashes == 0 {
                break;
            }
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let s: String = b[start..j].iter().collect();
                return (Tok::Str(s), k, nl);
            }
        }
        if !raw && b[j] == '\\' {
            j += 1;
        }
        j += 1;
    }
    let s: String = b[start..j.min(b.len())].iter().collect();
    (Tok::Str(s), (j + 1).min(b.len()), nl)
}

/// Strips `#[cfg(test)]` / `#[test]`-attributed items from a token stream,
/// returning the retained tokens. The heuristic: an attribute whose tokens
/// mention `test` (and not `not`) marks the next item; the item is skipped
/// through its matching closing brace (or trailing `;` for `mod tests;`).
pub fn strip_test_code(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct('#')
            && i + 1 < tokens.len()
            && tokens[i + 1].tok == Tok::Punct('[')
        {
            // Collect the attribute body up to the matching ']'.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) if s == "test" => has_test = true,
                    Tok::Ident(s) if s == "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                // Skip any further attributes, then the item itself.
                i = j;
                while i + 1 < tokens.len()
                    && tokens[i].tok == Tok::Punct('#')
                    && tokens[i + 1].tok == Tok::Punct('[')
                {
                    let mut d = 0usize;
                    let mut k = i + 1;
                    loop {
                        match tokens.get(k).map(|t| &t.tok) {
                            Some(Tok::Punct('[')) => d += 1,
                            Some(Tok::Punct(']')) => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            None => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k;
                }
                i = skip_item(tokens, i);
                continue;
            }
            // Not a test attribute: emit it verbatim.
            while i < j {
                out.push(tokens[i].clone());
                i += 1;
            }
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Skips one item starting at `i`: everything through the first top-level
/// `{...}` block, or through a `;` if one comes first (declaration form).
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct(';') if depth == 0 => return i + 1,
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<String> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn orderings_in_strings_and_comments_are_invisible() {
        let l = lex(r#"
            // Ordering::SeqCst in a comment
            /* Ordering::SeqCst in a block */
            let s = "Ordering::SeqCst in a string";
            x.store(1, Ordering::Release);
        "#);
        let ids = idents(&l);
        assert_eq!(
            ids.iter().filter(|s| *s == "Ordering").count(),
            1,
            "only the real site should tokenize"
        );
        assert_eq!(ids.iter().filter(|s| *s == "Release").count(), 1);
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn raw_strings_with_hashes_round_trip() {
        let l = lex(r##"let s = r#"quote " inside"#; let t = "after";"##);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            vec!["quote \" inside".to_string(), "after".to_string()]
        );
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let l = lex("let a = \"two\nlines\";\nlet b = 1;");
        // `b` is on line 3.
        let b_tok = l
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn strip_test_code_removes_cfg_test_mod() {
        let src = r#"
            fn real() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn fake() { y.unwrap(); }
            }
            fn also_real() {}
        "#;
        let l = lex(src);
        let kept = strip_test_code(&l.tokens);
        let ids: Vec<String> = kept
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&"real".to_string()));
        assert!(ids.contains(&"also_real".to_string()));
        assert!(!ids.contains(&"fake".to_string()));
        assert!(!ids.contains(&"y".to_string()));
    }

    #[test]
    fn strip_test_code_keeps_cfg_not_test() {
        let src = r#"
            #[cfg(not(test))]
            fn prod_only() { z.unwrap(); }
        "#;
        let l = lex(src);
        let kept = strip_test_code(&l.tokens);
        assert!(kept.iter().any(|t| t.tok == Tok::Ident("prod_only".into())));
    }

    #[test]
    fn strip_test_code_handles_test_attribute_on_fn() {
        let src = r#"
            #[test]
            fn a_test() { q.unwrap(); }
            fn real() {}
        "#;
        let l = lex(src);
        let kept = strip_test_code(&l.tokens);
        assert!(!kept.iter().any(|t| t.tok == Tok::Ident("a_test".into())));
        assert!(kept.iter().any(|t| t.tok == Tok::Ident("real".into())));
    }
}
