//! A minimal TOML-subset reader for `analyze/pins.toml`.
//!
//! Supported (all the manifest needs, nothing more): `[section]` headers,
//! `key = <integer>`, `key = "<string>"`, `key = ["a", "b", ...]`
//! (single-line or multi-line arrays), `#` comments, blank lines. No
//! registry access means no `toml` crate; parse errors are precise
//! (line-numbered) because a corrupt golden manifest must fail loudly,
//! not check vacuously.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Str(String),
    StrArray(Vec<String>),
}

/// section name → (key → value), preserving order via BTreeMap.
pub type Doc = BTreeMap<String, BTreeMap<String, Value>>;

/// Parses the subset. Returns `Err((line, message))` on the first error.
pub fn parse(src: &str) -> Result<Doc, (usize, String)> {
    let mut doc: Doc = BTreeMap::new();
    let mut section = String::new();
    let mut lines = src.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err((lineno, format!("unterminated section header `{raw}`")));
            };
            section = name.trim().to_string();
            if section.is_empty() {
                return Err((lineno, "empty section name".to_string()));
            }
            doc.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err((lineno, format!("expected `key = value`, got `{raw}`")));
        };
        let key = key.trim().to_string();
        if key.is_empty() {
            return Err((lineno, "empty key".to_string()));
        }
        let mut val = val.trim().to_string();
        // Multi-line array: accumulate until the closing bracket.
        if val.starts_with('[') && !balanced_array(&val) {
            loop {
                let Some((_, more)) = lines.next() else {
                    return Err((lineno, format!("unterminated array for key `{key}`")));
                };
                val.push(' ');
                val.push_str(strip_comment(more).trim());
                if balanced_array(&val) {
                    break;
                }
            }
        }
        let value = parse_value(&val).map_err(|m| (lineno, format!("key `{key}`: {m}")))?;
        let sect = doc.entry(section.clone()).or_default();
        if sect.insert(key.clone(), value).is_some() {
            return Err((lineno, format!("duplicate key `{key}` in [{section}]")));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// True when the accumulated array text has its closing `]` (outside
/// strings).
fn balanced_array(s: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    let mut closed = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    closed = true;
                }
            }
            _ => {}
        }
    }
    closed
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err("unterminated array".to_string());
        };
        let mut items = Vec::new();
        for item in split_array(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item)? {
                Value::Str(st) => items.push(st),
                _ => return Err(format!("array item `{item}` is not a string")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string `{s}`"));
        };
        return Ok(Value::Str(body.to_string()));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("`{s}` is not an integer, string, or string array"))
}

/// Splits an array body on commas outside strings.
fn split_array(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in body.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_ints_and_arrays() {
        let doc = parse(
            "# golden manifest\n\
             [verbs]\n\
             HELLO = 1  # pinned\n\
             ERROR = 15\n\
             \n\
             [metrics]\n\
             serve = [\"ftgemm_a\", \"ftgemm_b\"]\n\
             net = [\n  \"ftgemm_net_x\",\n  \"ftgemm_net_y\",\n]\n",
        )
        .unwrap();
        assert_eq!(doc["verbs"]["HELLO"], Value::Int(1));
        assert_eq!(doc["verbs"]["ERROR"], Value::Int(15));
        assert_eq!(
            doc["metrics"]["serve"],
            Value::StrArray(vec!["ftgemm_a".into(), "ftgemm_b".into()])
        );
        assert_eq!(
            doc["metrics"]["net"],
            Value::StrArray(vec!["ftgemm_net_x".into(), "ftgemm_net_y".into()])
        );
    }

    #[test]
    fn duplicate_keys_and_garbage_are_line_numbered_errors() {
        let e = parse("[a]\nx = 1\nx = 2\n").unwrap_err();
        assert_eq!(e.0, 3);
        let e = parse("[a]\nwhat even is this\n").unwrap_err();
        assert_eq!(e.0, 2);
        let e = parse("[a]\nx = nope\n").unwrap_err();
        assert_eq!(e.0, 2);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[a]\nx = \"anchor#5\"\n").unwrap();
        assert_eq!(doc["a"]["x"], Value::Str("anchor#5".into()));
    }
}
