//! Criterion benchmarks for the FT-BLAS companion layer: DMR overhead on
//! memory-bound Level-1/2 routines (FT-BLAS reports ~2x arithmetic for
//! memory-bound kernels hiding mostly under the bandwidth ceiling).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ftgemm_blas::level1;
use ftgemm_blas::level1_ft::{ft_axpy, ft_dot};
use ftgemm_blas::level2::gemv;
use ftgemm_blas::level2_ft::ft_gemv;
use ftgemm_blas::DmrConfig;
use ftgemm_core::Matrix;
use std::time::Duration;

fn bench_level1(c: &mut Criterion) {
    let mut g = c.benchmark_group("level1");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let n = 1 << 16;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let y0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).cos()).collect();
    let mut y = y0.clone();
    let cfg = DmrConfig::default();

    g.throughput(Throughput::Bytes((n * 8 * 2) as u64));
    g.bench_function("axpy/plain", |bch| {
        bch.iter(|| level1::axpy(1.0001, &x, &mut y));
    });
    g.bench_function("axpy/dmr", |bch| {
        bch.iter(|| ft_axpy(&cfg, 1.0001, &x, &mut y));
    });
    g.bench_function("dot/plain", |bch| {
        bch.iter(|| level1::dot(&x, &y0));
    });
    g.bench_function("dot/dmr", |bch| {
        bch.iter(|| ft_dot(&cfg, &x, &y0));
    });
    g.finish();
}

fn bench_level2(c: &mut Criterion) {
    let mut g = c.benchmark_group("level2");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let n = 1024;
    let a = Matrix::<f64>::random(n, n, 5);
    let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let mut y = vec![0.0; n];
    let cfg = DmrConfig::default();

    g.throughput(Throughput::Bytes((n * n * 8) as u64));
    g.bench_function("gemv/plain", |bch| {
        bch.iter(|| gemv(1.0, &a.as_ref(), &x, 0.0, &mut y));
    });
    g.bench_function("gemv/dmr", |bch| {
        bch.iter(|| ft_gemv(&cfg, 1.0, &a.as_ref(), &x, 0.0, &mut y));
    });
    g.finish();
}

criterion_group!(benches, bench_level1, bench_level2);
criterion_main!(benches);
