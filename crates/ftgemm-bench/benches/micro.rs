//! Criterion micro-benchmarks: micro-kernel tiers, packing (plain vs
//! fused), and checksum primitives. These quantify the *components* of the
//! paper's fusion argument: the fused variants must cost barely more than
//! the plain passes they ride on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftgemm_abft::checksum;
use ftgemm_core::{pack, select_kernel, AlignedVec, IsaLevel, Matrix};
use std::time::Duration;

fn bench_microkernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("microkernel");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let k = 256;

    for isa in IsaLevel::available() {
        let kern = select_kernel::<f64>(isa);
        let (mr, nr) = (kern.mr, kern.nr);
        let a = AlignedVec::<f64>::zeroed(mr * k).unwrap();
        let b = AlignedVec::<f64>::zeroed(nr * k).unwrap();
        let mut cbuf = vec![0.0f64; mr * nr];
        let mut col = vec![0.0f64; nr];
        let mut row = vec![0.0f64; mr];
        g.throughput(Throughput::Elements((2 * mr * nr * k) as u64));

        g.bench_with_input(
            BenchmarkId::new("plain", format!("{isa}-{mr}x{nr}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    // SAFETY: buffers sized per the kernel contract.
                    unsafe {
                        (kern.func)(
                            k,
                            a.as_ptr(),
                            b.as_ptr(),
                            cbuf.as_mut_ptr(),
                            mr,
                            mr,
                            nr,
                            std::ptr::null_mut(),
                            std::ptr::null_mut(),
                        )
                    }
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("ft-sums", format!("{isa}-{mr}x{nr}")),
            &(),
            |bch, _| {
                bch.iter(|| {
                    // SAFETY: as above, with valid sum vectors.
                    unsafe {
                        (kern.func)(
                            k,
                            a.as_ptr(),
                            b.as_ptr(),
                            cbuf.as_mut_ptr(),
                            mr,
                            mr,
                            nr,
                            col.as_mut_ptr(),
                            row.as_mut_ptr(),
                        )
                    }
                });
            },
        );
    }
    g.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let (mc, kc, nc) = (128, 256, 512);
    let (mr, nr) = (16, 8);
    let a = Matrix::<f64>::random(mc, kc, 1);
    let b = Matrix::<f64>::random(kc, nc, 2);
    let mut a_out = vec![0.0; mc.div_ceil(mr) * mr * kc];
    let mut b_out = vec![0.0; nc.div_ceil(nr) * nr * kc];
    let ar = vec![1.0; kc];
    let bc_in = vec![1.0; kc];
    let mut bc = vec![0.0; kc];
    let mut enc_col = vec![0.0; nc];
    let mut enc_row = vec![0.0; mc];

    g.throughput(Throughput::Bytes((kc * nc * 8) as u64));
    g.bench_function("pack_b/plain", |bch| {
        bch.iter(|| pack::pack_b(&b.as_ref(), nr, &mut b_out));
    });
    g.bench_function("pack_b/fused(bc+enc_col)", |bch| {
        bch.iter(|| pack::pack_b_fused(&b.as_ref(), nr, &mut b_out, &ar, &mut bc, &mut enc_col));
    });
    g.throughput(Throughput::Bytes((mc * kc * 8) as u64));
    g.bench_function("pack_a/plain", |bch| {
        bch.iter(|| pack::pack_a(&a.as_ref(), 1.0, mr, &mut a_out));
    });
    g.bench_function("pack_a/fused(enc_row)", |bch| {
        bch.iter(|| pack::pack_a_fused(&a.as_ref(), 1.0, mr, &mut a_out, &bc_in, &mut enc_row));
    });
    g.finish();
}

fn bench_checksums(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    let n = 768;
    let mut m = Matrix::<f64>::random(n, n, 3);
    let mut er = vec![0.0; n];
    let mut ec = vec![0.0; n];

    g.throughput(Throughput::Bytes((n * n * 8) as u64));
    g.bench_function("scale_encode_c (fused)", |bch| {
        bch.iter(|| checksum::scale_encode_c(&mut m.as_mut(), 1.0, &mut er, &mut ec));
    });
    g.bench_function("scale_then_encode_c (unfused)", |bch| {
        bch.iter(|| checksum::scale_then_encode_c(&mut m.as_mut(), 1.0, &mut er, &mut ec));
    });
    g.bench_function("encode_c (read-back)", |bch| {
        bch.iter(|| checksum::encode_c(&m.as_ref(), &mut er, &mut ec));
    });
    g.finish();
}

criterion_group!(benches, bench_microkernels, bench_packing, bench_checksums);
criterion_main!(benches);
