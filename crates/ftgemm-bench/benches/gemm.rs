//! Criterion GEMM benchmarks: the five comparator implementations plus the
//! fault-tolerance variants, serial and parallel, at fixed representative
//! sizes (Criterion complements the figure binaries, which sweep sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtGemmContext};
use ftgemm_baselines::{ReferenceGemm, Tier};
use ftgemm_core::{gemm, GemmContext, Matrix};
use ftgemm_faults::FaultInjector;
use ftgemm_parallel::{par_ft_gemm, par_gemm, ParGemmContext};
use std::time::Duration;

const N: usize = 512;

fn flops(n: usize) -> u64 {
    (2 * n * n * n) as u64
}

fn bench_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("serial-dgemm");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    g.throughput(Throughput::Elements(flops(N)));

    let a = Matrix::<f64>::random(N, N, 1);
    let b = Matrix::<f64>::random(N, N, 2);
    let mut cm = Matrix::<f64>::zeros(N, N);

    let mut ori = GemmContext::<f64>::new();
    g.bench_function(BenchmarkId::new("ori", N), |bch| {
        bch.iter(|| {
            gemm(
                &mut ori,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut cm.as_mut(),
            )
            .unwrap()
        });
    });

    let mut ft = FtGemmContext::<f64>::new();
    let fused = FtConfig::default();
    g.bench_function(BenchmarkId::new("ft-fused", N), |bch| {
        bch.iter(|| {
            ft_gemm_with_ctx(
                &mut ft,
                &fused,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut cm.as_mut(),
            )
            .unwrap()
        });
    });

    let unfused = FtConfig::unfused();
    g.bench_function(BenchmarkId::new("ft-unfused", N), |bch| {
        bch.iter(|| {
            ft_gemm_with_ctx(
                &mut ft,
                &unfused,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut cm.as_mut(),
            )
            .unwrap()
        });
    });

    let inj = FaultInjector::counted(1, 4);
    let injected = FtConfig::with_injector(inj);
    g.bench_function(BenchmarkId::new("ft-under-injection", N), |bch| {
        bch.iter(|| {
            ft_gemm_with_ctx(
                &mut ft,
                &injected,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut cm.as_mut(),
            )
            .unwrap()
        });
    });

    for tier in [Tier::Mkl, Tier::OpenBlas, Tier::Blis] {
        let mut rg = ReferenceGemm::<f64>::new(tier);
        g.bench_function(BenchmarkId::new(rg.name(), N), |bch| {
            bch.iter(|| {
                rg.run(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut cm.as_mut())
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel-dgemm");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.sample_size(10);
    let n = 1024;
    g.throughput(Throughput::Elements(flops(n)));

    let a = Matrix::<f64>::random(n, n, 1);
    let b = Matrix::<f64>::random(n, n, 2);
    let mut cm = Matrix::<f64>::zeros(n, n);
    let threads = ftgemm_core::cpu::num_cpus().min(8);
    let ctx = ParGemmContext::<f64>::with_threads(threads);
    let fused = FtConfig::default();

    g.bench_function(BenchmarkId::new("ori", format!("{n}x{threads}t")), |bch| {
        bch.iter(|| par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut cm.as_mut()).unwrap());
    });
    g.bench_function(
        BenchmarkId::new("ft-fused", format!("{n}x{threads}t")),
        |bch| {
            bch.iter(|| {
                par_ft_gemm(
                    &ctx,
                    &fused,
                    1.0,
                    &a.as_ref(),
                    &b.as_ref(),
                    1.0,
                    &mut cm.as_mut(),
                )
                .unwrap()
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_serial, bench_parallel);
criterion_main!(benches);
