//! Minimal machine-readable JSON output for the experiment binaries.
//!
//! The build environment is offline (no serde); this is the small subset a
//! perf-trajectory tracker needs: objects, arrays, numbers, strings,
//! rendered pretty enough to diff across PRs. Every experiment binary that
//! participates in trajectory tracking writes a `BENCH_<name>.json` file
//! into `bench_results/` next to its CSV.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A JSON value. Build nested structures with [`JsonValue::obj`] /
/// [`JsonValue::arr`] and the `From` impls for numbers/strings/bools.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Num(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Num(v as f64)
    }
}
impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<V: Into<JsonValue>> From<Vec<V>> for JsonValue {
    fn from(v: Vec<V>) -> Self {
        JsonValue::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl JsonValue {
    /// Empty object.
    pub fn obj() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// Empty array.
    pub fn arr() -> Self {
        JsonValue::Arr(Vec::new())
    }

    /// Appends `key: value` (object values only; panics otherwise —
    /// builder misuse, not data-dependent).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object JsonValue"),
        }
        self
    }

    /// Appends an element (array values only; panics otherwise).
    #[must_use]
    pub fn push(mut self, value: impl Into<JsonValue>) -> Self {
        match &mut self {
            JsonValue::Arr(items) => items.push(value.into()),
            _ => panic!("push() on a non-array JsonValue"),
        }
        self
    }

    /// Renders with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close_pad = "  ".repeat(depth);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format_number(*v));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_str_into(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.render_into(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    escape_str_into(out, key);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close_pad);
                out.push('}');
            }
        }
    }
}

/// Renders `s` as a quoted, escaped JSON string (shared by string values
/// and object keys).
fn escape_str_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Integers render without a fraction; everything else keeps full shortest
/// round-trip precision.
fn format_number(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Writes `value` to `dir/BENCH_<name>.json` (creating `dir` if needed);
/// returns the path.
pub fn write_bench_json(dir: &str, name: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("BENCH_{name}.json"));
    let mut file = fs::File::create(&path)?;
    writeln!(file, "{}", value.render())?;
    Ok(path)
}

/// Percentile (0..=100, nearest-rank on a copy) of a sample set; `0.0` for
/// an empty set.
///
/// Re-exported from [`ftgemm_obs`] so benchmark summaries and the metrics
/// histogram's [`quantile`](ftgemm_obs::Histogram::quantile) share one
/// rank-selection rule (same divisor, same rounding).
pub use ftgemm_obs::percentile;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = JsonValue::obj()
            .field("bench", "serve")
            .field("threads", 8usize)
            .field("rps", 1234.5f64)
            .field(
                "rows",
                JsonValue::arr().push(JsonValue::obj().field("max_batch", 1usize)),
            );
        let s = v.render();
        assert!(s.contains("\"bench\": \"serve\""));
        assert!(s.contains("\"threads\": 8"));
        assert!(s.contains("\"rps\": 1234.5"));
        assert!(s.contains("\"max_batch\": 1"));
    }

    #[test]
    fn escapes_strings_and_handles_nonfinite() {
        let v = JsonValue::obj()
            .field("s", "a\"b\\c\nd")
            .field("nan", f64::NAN);
        let s = v.render();
        assert!(s.contains("\\\"b\\\\c\\nd"));
        assert!(s.contains("\"nan\": null"));
    }

    #[test]
    fn escapes_object_keys() {
        let v = JsonValue::obj().field("p\"50\"", 1usize);
        assert!(v.render().contains("\"p\\\"50\\\"\": 1"));
    }

    #[test]
    fn percentiles() {
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&samples, 0.0), 0.0);
        assert_eq!(percentile(&samples, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_single_sample_is_that_sample_at_any_pct() {
        for pct in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], pct), 7.5, "pct {pct}");
        }
    }

    #[test]
    fn percentile_two_samples_split_at_the_midpoint() {
        // Nearest-rank over [1, 9]: the fractional rank pct/100 rounds to
        // index 0 below 50% and to index 1 from 50% up (f64::round is
        // half-away-from-zero, so exactly 0.5 lands on the upper sample).
        let two = [1.0, 9.0];
        assert_eq!(percentile(&two, 0.0), 1.0);
        assert_eq!(percentile(&two, 49.0), 1.0);
        assert_eq!(percentile(&two, 50.0), 9.0);
        assert_eq!(percentile(&two, 100.0), 9.0);
    }

    #[test]
    fn percentile_sorts_its_input_copy() {
        // Unsorted input must give the same answers as sorted input, and
        // must not be reordered in place.
        let unsorted = [30.0, 10.0, 50.0, 20.0, 40.0];
        assert_eq!(percentile(&unsorted, 0.0), 10.0);
        assert_eq!(percentile(&unsorted, 50.0), 30.0);
        assert_eq!(percentile(&unsorted, 100.0), 50.0);
        assert_eq!(unsorted, [30.0, 10.0, 50.0, 20.0, 40.0]);
    }

    #[test]
    fn percentile_clamps_out_of_range_pct() {
        let samples = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&samples, 150.0), 3.0, "pct > 100 clamps to max");
    }

    #[test]
    fn roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("ftgemm-bench-json");
        let v = JsonValue::obj().field("x", 1usize);
        let p = write_bench_json(dir.to_str().unwrap(), "test", &v).unwrap();
        assert!(p.file_name().unwrap().to_str().unwrap() == "BENCH_test.json");
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.contains("\"x\": 1"));
    }
}
