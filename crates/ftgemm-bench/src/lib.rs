//! # ftgemm-bench
//!
//! Benchmark harness regenerating every figure and table of the FT-GEMM
//! paper's evaluation (§3). One binary per experiment — see `DESIGN.md`'s
//! experiment index:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2a` | Fig. 2(a): serial DGEMM GFLOPS vs size, five curves |
//! | `fig2b` | Fig. 2(b): parallel DGEMM GFLOPS vs size |
//! | `fig2c` | Fig. 2(c): serial GFLOPS under error injection |
//! | `fig2d` | Fig. 2(d): parallel GFLOPS under error injection |
//! | `overhead_table` | T1/T2: fused vs unfused ABFT overhead percentages |
//! | `speedup_table` | T3: FT-GEMM speedup over the library stand-ins |
//! | `reliability` | T4: sustained errors-per-minute campaign with validation |
//! | `ablation_fusion` | A1: per-fusion-point overhead decomposition |
//! | `ablation_blocking` | A2: blocking-parameter / ISA-tier sensitivity |
//!
//! Every binary prints a paper-style table and writes CSV under
//! `bench_results/`. Default sweeps are scaled down (CI-sized); pass
//! `--paper-sizes` for the full-size lists from the paper.

#![warn(missing_docs)]

pub mod args;
pub mod json;
pub mod report;
pub mod runners;
pub mod timing;

pub use args::Args;
pub use json::{percentile, write_bench_json, JsonValue};
pub use report::{CsvWriter, Table};
pub use runners::{GemmRunner, RunnerKind};
pub use timing::{gflops, measure, measure_times, Measurement};

/// Paper's serial sweep (Fig. 2a/2c): 1024^2 .. 10240^2 step 1024.
pub fn paper_serial_sizes() -> Vec<usize> {
    (1..=10).map(|i| i * 1024).collect()
}

/// Paper's parallel sweep (Fig. 2b/2d): 512 .. 19968.
pub fn paper_parallel_sizes() -> Vec<usize> {
    vec![
        512, 1536, 2560, 3584, 4608, 5632, 6656, 7680, 8704, 9728, 10752, 11776, 12800, 13824,
        14848, 15872, 16896, 17920, 18944, 19968,
    ]
}

/// Scaled-down serial sweep (same shape, laptop/CI budget).
pub fn scaled_serial_sizes() -> Vec<usize> {
    vec![256, 384, 512, 640, 768, 896, 1024, 1280]
}

/// Scaled-down parallel sweep.
pub fn scaled_parallel_sizes() -> Vec<usize> {
    vec![256, 512, 768, 1024, 1536, 2048]
}
