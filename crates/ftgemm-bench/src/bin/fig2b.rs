//! Figure 2(b): parallel DGEMM performance, five curves (paper: sizes
//! 512..19968, all cores).
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin fig2b [--paper-sizes]
//! [--threads N]`

use ftgemm_bench::{gflops, measure, Args, Table};
use ftgemm_core::Matrix;

fn main() {
    let args = Args::parse();
    let sizes = args.parallel_sizes();
    let mut suite = ftgemm_bench::runners::parallel_suite(args.threads, None);

    let mut headers: Vec<&str> = vec!["size"];
    let names: Vec<String> = suite.iter().map(|r| r.name().to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(
        &format!(
            "Fig 2(b) — FT-DGEMM, Parallel ({} threads): GFLOPS",
            args.threads
        ),
        &headers,
    );

    for &s in &sizes {
        let a = Matrix::<f64>::random(s, s, 0xA);
        let b = Matrix::<f64>::random(s, s, 0xB);
        let mut row = vec![s.to_string()];
        for runner in &mut suite {
            let mut c = Matrix::<f64>::zeros(s, s);
            let meas = measure(args.warmup, args.reps, || {
                runner.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            });
            row.push(format!("{:.2}", gflops(s, s, s, meas.avg)));
            eprint!(".");
        }
        eprintln!(" {s} done");
        table.row(row);
    }

    table.print();
    match table.write_csv(&args.out_dir, "fig2b") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
