//! Experiment T4: sustained reliability campaign — "high reliability ...
//! even under hundreds of errors injected per minute" (paper abstract/§3.2),
//! with every run's output validated against a clean reference (the paper
//! verifies against MKL; our clean reference is the same FT-GEMM with the
//! injector off, which the test suite shows bit-matches the plain GEMM).
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin reliability
//! [--duration 30] [--threads N]`

use ftgemm_abft::FtConfig;
use ftgemm_bench::Args;
use ftgemm_core::Matrix;
use ftgemm_faults::{Campaign, CampaignOutcome, ErrorModel, FaultInjector, Rate};
use ftgemm_parallel::{par_ft_gemm, ParGemmContext};
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let s = args
        .sizes
        .as_ref()
        .and_then(|v| v.first().copied())
        .unwrap_or(768);

    // Aggressive wall-clock rate: plenty of "errors per minute".
    let injector = FaultInjector::new(
        0x4E11AB1E,
        ErrorModel::Additive { magnitude: 1.0e7 },
        Rate::PerSecond(20.0),
    );
    let ctx = ParGemmContext::<f64>::with_threads(args.threads);

    let a = Matrix::<f64>::random(s, s, 1);
    let b = Matrix::<f64>::random(s, s, 2);
    // Clean reference, computed once.
    let mut c_ref = Matrix::<f64>::zeros(s, s);
    par_ft_gemm(
        &ctx,
        &FtConfig::default(),
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c_ref.as_mut(),
    )
    .expect("reference run failed");

    println!(
        "reliability campaign: {s}x{s} DGEMM on {} threads for {}s, injecting ~20 errors/s",
        args.threads, args.duration_secs
    );

    let campaign = Campaign::new(Duration::from_secs(args.duration_secs), injector);
    let mut unrecoverable = 0u64;
    let report = campaign.run(|inj| {
        let cfg = FtConfig::with_injector(inj.clone());
        let _ = &cfg;
        let mut c = Matrix::<f64>::zeros(s, s);
        match par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        ) {
            Ok(_) => {
                if c.rel_max_diff(&c_ref) < 1e-6 {
                    CampaignOutcome::Correct
                } else {
                    CampaignOutcome::Mismatch
                }
            }
            Err(_) => {
                // Colliding-error pattern flagged as unrecoverable: detected,
                // not silently wrong. Counted separately.
                unrecoverable += 1;
                CampaignOutcome::Skipped
            }
        }
    });

    println!(
        "\nruns: {}  validated: {}  mismatches: {}  flagged-unrecoverable: {}\n\
         injected: {}  corrected: {}  rate: {:.0} errors/minute  elapsed: {:.1}s",
        report.runs,
        report.validated,
        report.mismatches,
        unrecoverable,
        report.injected,
        report.corrected,
        report.errors_per_minute,
        report.elapsed.as_secs_f64(),
    );
    if report.mismatches == 0 {
        println!(
            "RESULT: all evaluated runs matched the clean reference (paper: 'high reliability')"
        );
    } else {
        println!("RESULT: {} runs diverged — investigate", report.mismatches);
    }
}
