//! Figure 2(d): parallel performance under error injection.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin fig2d [--errors 20]
//! [--threads N]`

use ftgemm_bench::{gflops, measure, Args, Table};
use ftgemm_core::Matrix;
use ftgemm_faults::FaultInjector;

fn main() {
    let args = Args::parse();
    let sizes = args.parallel_sizes();
    let injector = FaultInjector::counted(0xED, args.errors);
    let mut suite = ftgemm_bench::runners::parallel_suite(args.threads, Some(injector.clone()));

    let mut headers: Vec<&str> = vec!["size"];
    let names: Vec<String> = suite.iter().map(|r| r.name().to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    headers.push("FT corrected");
    let mut table = Table::new(
        &format!(
            "Fig 2(d) — Error injection, Parallel ({} threads, {} errors/run/thread on FT): GFLOPS",
            args.threads, args.errors
        ),
        &headers,
    );

    for &s in &sizes {
        let a = Matrix::<f64>::random(s, s, 0xA);
        let b = Matrix::<f64>::random(s, s, 0xB);
        let mut row = vec![s.to_string()];
        injector.stats().reset();
        for runner in &mut suite {
            let mut c = Matrix::<f64>::zeros(s, s);
            let meas = measure(args.warmup, args.reps, || {
                runner.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            });
            row.push(format!("{:.2}", gflops(s, s, s, meas.avg)));
            eprint!(".");
        }
        row.push(format!(
            "{}/{}",
            injector.stats().corrected(),
            injector.stats().injected()
        ));
        eprintln!(" {s} done ({})", injector.stats().summary());
        table.row(row);
    }

    table.print();
    println!("\ninjector totals: {}", injector.stats().summary());
    match table.write_csv(&args.out_dir, "fig2d") {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
