//! Experiments T1/T2: fault-tolerance overhead.
//!
//! * T1 (paper §2.2): fused vs unfused ABFT — "the FT overhead becomes
//!   purely computational, decreasing from about 15% to 2.94%".
//! * T2 (paper §3.1): serial FT overhead 1.17%–3.58% (avg); parallel 1.79%.
//!
//! Reports, per size: Ori GFLOPS, fused-FT / unfused-FT overhead % (serial
//! and parallel).
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin overhead_table`

use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtGemmContext};
use ftgemm_bench::{measure, Args, Table};
use ftgemm_core::{gemm, GemmContext, Matrix};
use ftgemm_parallel::{par_ft_gemm, par_gemm, ParGemmContext};

fn main() {
    let args = Args::parse();
    let sizes = args.serial_sizes();

    let mut table = Table::new(
        "T1/T2 — ABFT overhead vs 'FT-GEMM: Ori' (paper: fused 1.2-3.6% serial / 1.8% parallel; unfused ~15%)",
        &[
            "size",
            "serial Ori GF",
            "serial fused ovh",
            "serial unfused ovh",
            "par Ori GF",
            "par fused ovh",
            "par unfused ovh",
        ],
    );

    let mut ori_ctx = GemmContext::<f64>::new();
    let mut ft_ctx = FtGemmContext::<f64>::new();
    let mut unf_ctx = FtGemmContext::<f64>::new();
    let par_ctx = ParGemmContext::<f64>::with_threads(args.threads);
    let fused = FtConfig::default();
    let unfused = FtConfig::unfused();

    let mut serial_fused_ovh = Vec::new();
    let mut serial_unfused_ovh = Vec::new();
    let mut par_fused_ovh = Vec::new();

    for &s in &sizes {
        let a = Matrix::<f64>::random(s, s, 1);
        let b = Matrix::<f64>::random(s, s, 2);
        let mut c = Matrix::<f64>::zeros(s, s);

        let t_ori = measure(args.warmup, args.reps, || {
            gemm(
                &mut ori_ctx,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let t_ft = measure(args.warmup, args.reps, || {
            ft_gemm_with_ctx(
                &mut ft_ctx,
                &fused,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let t_unf = measure(args.warmup, args.reps, || {
            ft_gemm_with_ctx(
                &mut unf_ctx,
                &unfused,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let t_par_ori = measure(args.warmup, args.reps, || {
            par_gemm(
                &par_ctx,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let t_par_ft = measure(args.warmup, args.reps, || {
            par_ft_gemm(
                &par_ctx,
                &fused,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let t_par_unf = measure(args.warmup, args.reps, || {
            par_ft_gemm(
                &par_ctx,
                &unfused,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });

        // Min-of-reps: the noise-robust estimator for compute-bound kernels
        // on shared machines (scheduler interference only ever adds time).
        let ovh = |ft: f64, ori: f64| (ft / ori - 1.0) * 100.0;
        let so = ovh(t_ft.min, t_ori.min);
        let su = ovh(t_unf.min, t_ori.min);
        let po = ovh(t_par_ft.min, t_par_ori.min);
        let pu = ovh(t_par_unf.min, t_par_ori.min);
        serial_fused_ovh.push(so);
        serial_unfused_ovh.push(su);
        par_fused_ovh.push(po);

        table.row(vec![
            s.to_string(),
            format!("{:.2}", t_ori.gflops(s, s, s)),
            format!("{so:+.2}%"),
            format!("{su:+.2}%"),
            format!("{:.2}", t_par_ori.gflops(s, s, s)),
            format!("{po:+.2}%"),
            format!("{pu:+.2}%"),
        ]);
        eprintln!("{s} done");
    }

    table.print();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\naverages: serial fused {:+.2}% (paper 1.17-3.58%), serial unfused {:+.2}% (paper ~15%), parallel fused {:+.2}% (paper 1.79%)",
        avg(&serial_fused_ovh),
        avg(&serial_unfused_ovh),
        avg(&par_fused_ovh)
    );
    match table.write_csv(&args.out_dir, "overhead_table") {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
