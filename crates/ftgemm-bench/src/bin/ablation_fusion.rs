//! Ablation A1: contribution of each fusion point (paper §2.2's design).
//!
//! Measures FT overhead over "Ori" as fusion points are enabled one at a
//! time: none (traditional ABFT) -> +C-scale fusion -> +B-pack fusion ->
//! +A-pack fusion -> +register-level refs (full FT-GEMM).
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin ablation_fusion`

use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtGemmContext, FusionConfig};
use ftgemm_bench::{measure, Args, Table};
use ftgemm_core::{gemm, GemmContext, Matrix};

fn main() {
    let args = Args::parse();
    let sizes = args.serial_sizes();

    let stages: Vec<(&str, FusionConfig)> = vec![
        ("unfused", FusionConfig::UNFUSED),
        (
            "+C-scale",
            FusionConfig {
                fuse_c_scale: true,
                ..FusionConfig::UNFUSED
            },
        ),
        (
            "+B-pack",
            FusionConfig {
                fuse_c_scale: true,
                fuse_b_pack: true,
                ..FusionConfig::UNFUSED
            },
        ),
        (
            "+A-pack",
            FusionConfig {
                fuse_c_scale: true,
                fuse_b_pack: true,
                fuse_a_pack: true,
                ..FusionConfig::UNFUSED
            },
        ),
        ("+kernel-refs (full)", FusionConfig::FUSED),
    ];

    let mut headers: Vec<&str> = vec!["size", "Ori GF"];
    headers.extend(stages.iter().map(|(n, _)| *n));
    let mut table = Table::new(
        "A1 — serial FT overhead by fusion stage (lower is better; paper: ~15% unfused -> ~3% full)",
        &headers,
    );

    let mut ori_ctx = GemmContext::<f64>::new();
    let mut ft_ctx = FtGemmContext::<f64>::new();

    for &s in &sizes {
        let a = Matrix::<f64>::random(s, s, 1);
        let b = Matrix::<f64>::random(s, s, 2);
        let mut c = Matrix::<f64>::zeros(s, s);
        let t_ori = measure(args.warmup, args.reps, || {
            gemm(
                &mut ori_ctx,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let mut row = vec![s.to_string(), format!("{:.2}", t_ori.gflops(s, s, s))];
        for (_, fusion) in &stages {
            let cfg = FtConfig {
                fusion: *fusion,
                ..Default::default()
            };
            let t = measure(args.warmup, args.reps, || {
                ft_gemm_with_ctx(
                    &mut ft_ctx,
                    &cfg,
                    1.0,
                    &a.as_ref(),
                    &b.as_ref(),
                    1.0,
                    &mut c.as_mut(),
                )
                .unwrap();
            });
            row.push(format!("{:+.2}%", (t.min / t_ori.min - 1.0) * 100.0));
        }
        table.row(row);
        eprintln!("{s} done");
    }

    table.print();
    match table.write_csv(&args.out_dir, "ablation_fusion") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
