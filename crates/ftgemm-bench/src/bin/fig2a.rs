//! Figure 2(a): serial DGEMM performance, five curves over a square-size
//! sweep (paper: 1024..10240 step 1024, average of 20 repetitions).
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin fig2a [--paper-sizes]`

use ftgemm_bench::{gflops, measure, Args, Table};
use ftgemm_core::Matrix;

fn main() {
    let args = Args::parse();
    let sizes = args.serial_sizes();
    let mut suite = ftgemm_bench::runners::serial_suite(None);

    let mut headers: Vec<&str> = vec!["size"];
    let names: Vec<String> = suite.iter().map(|r| r.name().to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    let mut table = Table::new(
        "Fig 2(a) — FT-DGEMM, Serial: GFLOPS (higher is better)",
        &headers,
    );

    for &s in &sizes {
        let a = Matrix::<f64>::random(s, s, 0xA);
        let b = Matrix::<f64>::random(s, s, 0xB);
        let mut row = vec![s.to_string()];
        for runner in &mut suite {
            let mut c = Matrix::<f64>::zeros(s, s);
            let meas = measure(args.warmup, args.reps, || {
                runner.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            });
            row.push(format!("{:.2}", gflops(s, s, s, meas.avg)));
            eprint!(".");
        }
        eprintln!(" {s} done");
        table.row(row);
    }

    table.print();
    match table.write_csv(&args.out_dir, "fig2a") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
