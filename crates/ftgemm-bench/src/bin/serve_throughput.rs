//! Serving throughput: requests/sec of `GemmService` over batch-coalescing
//! limits {1, 8, 64}, with fault tolerance off and on, at a fixed small-GEMM
//! workload. `max_batch = 1` is the no-coalescing baseline (every request
//! pays its own parallel region), so the sweep isolates what batching buys.
//!
//! A second table compares the three submit surfaces at a fixed
//! `max_batch`: blocking handles (`submit` + `wait` each), async futures
//! (`submit_async` driven by a minimal park-based executor), and the
//! completion-channel bridge (`submit_streamed` + one drain loop) — i.e.
//! what the zero-waiter-thread surfaces cost relative to the sync path.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin serve_throughput
//!         [--reps N] [--threads N]`

use ftgemm_bench::{Args, Table};
use ftgemm_core::Matrix;
use ftgemm_serve::exec::block_on_all;
use ftgemm_serve::{completion_channel, FtPolicy, GemmRequest, GemmService, ServiceConfig};
use std::time::Instant;

/// Small-GEMM edge; comfortably under any sane routing cutoff.
const DIM: usize = 64;
/// Requests per timed run.
const REQUESTS: usize = 512;

/// Which submit/redeem surface a timed run exercises.
#[derive(Clone, Copy, PartialEq)]
enum Surface {
    /// `submit` + blocking `wait` per handle.
    Sync,
    /// `submit_async` futures driven by `ftgemm_serve::exec::block_on_all`.
    Async,
    /// `submit_streamed` into one completion channel, one drain loop.
    Streamed,
}

fn run_once(threads: usize, max_batch: usize, policy: FtPolicy) -> f64 {
    run_surface(threads, max_batch, policy, Surface::Sync)
}

fn run_surface(threads: usize, max_batch: usize, policy: FtPolicy, surface: Surface) -> f64 {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        ..ServiceConfig::default()
    });
    // Pre-build operands so the timed section measures serving, not RNG.
    let problems: Vec<_> = (0..REQUESTS as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();

    let t0 = Instant::now();
    match surface {
        Surface::Sync => {
            let handles: Vec<_> = problems
                .into_iter()
                .map(|(a, b)| {
                    service
                        .submit(GemmRequest::new(a, b).with_policy(policy))
                        .expect("submit")
                })
                .collect();
            for h in handles {
                h.wait().expect("request failed");
            }
        }
        Surface::Async => {
            let futures: Vec<_> = problems
                .into_iter()
                .map(|(a, b)| {
                    service
                        .submit_async(GemmRequest::new(a, b).with_policy(policy))
                        .expect("submit_async")
                })
                .collect();
            let results = block_on_all(futures);
            assert_eq!(results.len(), REQUESTS);
            for r in results {
                r.expect("request failed");
            }
        }
        Surface::Streamed => {
            let (sink, mut completions) = completion_channel::<f64>();
            for (a, b) in problems {
                service
                    .submit_streamed(GemmRequest::new(a, b).with_policy(policy), &sink)
                    .expect("submit_streamed");
            }
            let mut drained = 0;
            while let Some(c) = completions.recv() {
                c.result.expect("request failed");
                drained += 1;
            }
            assert_eq!(drained, REQUESTS);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(service);
    REQUESTS as f64 / elapsed
}

fn main() {
    let args = Args::parse();
    let threads = args.threads;
    println!(
        "serve_throughput: {REQUESTS} x {DIM}^3 DGEMM requests, {threads} threads, \
         best of {} runs\n",
        args.reps.max(1)
    );

    let mut table = Table::new(
        "GemmService throughput — requests/sec (higher is better)",
        &[
            "max_batch",
            "ft off",
            "ft on (DetectCorrect)",
            "ft overhead",
        ],
    );
    for &max_batch in &[1usize, 8, 64] {
        let best = |policy: FtPolicy| {
            (0..args.reps.max(1))
                .map(|_| run_once(threads, max_batch, policy))
                .fold(0.0f64, f64::max)
        };
        let off = best(FtPolicy::Off);
        let on = best(FtPolicy::DetectCorrect);
        table.row(vec![
            max_batch.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
            format!("{:.1}%", (off / on - 1.0) * 100.0),
        ]);
        eprintln!("max_batch {max_batch} done");
    }
    table.print();
    match table.write_csv(&args.out_dir, "serve_throughput") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }

    // Second table: submission-surface overhead at a fixed coalescing limit.
    const SURFACE_BATCH: usize = 32;
    let mut surfaces = Table::new(
        "Submit-surface overhead — requests/sec at max_batch 32 (higher is better)",
        &["surface", "ft off", "ft on (DetectCorrect)"],
    );
    for (name, surface) in [
        ("sync (submit + wait)", Surface::Sync),
        ("async futures (block_on)", Surface::Async),
        ("streamed (completion chan)", Surface::Streamed),
    ] {
        let best = |policy: FtPolicy| {
            (0..args.reps.max(1))
                .map(|_| run_surface(threads, SURFACE_BATCH, policy, surface))
                .fold(0.0f64, f64::max)
        };
        let off = best(FtPolicy::Off);
        let on = best(FtPolicy::DetectCorrect);
        surfaces.row(vec![
            name.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
        ]);
        eprintln!("surface '{name}' done");
    }
    surfaces.print();
    match surfaces.write_csv(&args.out_dir, "serve_surfaces") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
