//! Serving throughput: requests/sec of `GemmService` over batch-coalescing
//! limits {1, 8, 64}, with fault tolerance off and on, at a fixed small-GEMM
//! workload. `max_batch = 1` is the no-coalescing baseline (every request
//! pays its own parallel region), so the sweep isolates what batching buys.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin serve_throughput
//!         [--reps N] [--threads N]`

use ftgemm_bench::{Args, Table};
use ftgemm_core::Matrix;
use ftgemm_serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
use std::time::Instant;

/// Small-GEMM edge; comfortably under any sane routing cutoff.
const DIM: usize = 64;
/// Requests per timed run.
const REQUESTS: usize = 512;

fn run_once(threads: usize, max_batch: usize, policy: FtPolicy) -> f64 {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        ..ServiceConfig::default()
    });
    // Pre-build operands so the timed section measures serving, not RNG.
    let problems: Vec<_> = (0..REQUESTS as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();

    let t0 = Instant::now();
    let handles: Vec<_> = problems
        .into_iter()
        .map(|(a, b)| {
            service
                .submit(GemmRequest::new(a, b).with_policy(policy))
                .expect("submit")
        })
        .collect();
    for h in handles {
        h.wait().expect("request failed");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(service);
    REQUESTS as f64 / elapsed
}

fn main() {
    let args = Args::parse();
    let threads = args.threads;
    println!(
        "serve_throughput: {REQUESTS} x {DIM}^3 DGEMM requests, {threads} threads, \
         best of {} runs\n",
        args.reps.max(1)
    );

    let mut table = Table::new(
        "GemmService throughput — requests/sec (higher is better)",
        &[
            "max_batch",
            "ft off",
            "ft on (DetectCorrect)",
            "ft overhead",
        ],
    );
    for &max_batch in &[1usize, 8, 64] {
        let best = |policy: FtPolicy| {
            (0..args.reps.max(1))
                .map(|_| run_once(threads, max_batch, policy))
                .fold(0.0f64, f64::max)
        };
        let off = best(FtPolicy::Off);
        let on = best(FtPolicy::DetectCorrect);
        table.row(vec![
            max_batch.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
            format!("{:.1}%", (off / on - 1.0) * 100.0),
        ]);
        eprintln!("max_batch {max_batch} done");
    }
    table.print();
    match table.write_csv(&args.out_dir, "serve_throughput") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
