//! Serving throughput: requests/sec of `GemmService` over batch-coalescing
//! limits {1, 8, 64}, with fault tolerance off and on, at a fixed small-GEMM
//! workload. `max_batch = 1` is the no-coalescing baseline (every request
//! pays its own parallel region), so the sweep isolates what batching buys.
//!
//! A second table compares the three submit surfaces at a fixed
//! `max_batch`: blocking handles (`submit` + `wait` each), async futures
//! (`submit_async` driven by a minimal park-based executor), and the
//! completion-channel bridge (`submit_streamed` + one drain loop) — i.e.
//! what the zero-waiter-thread surfaces cost relative to the sync path.
//!
//! A third pass measures per-request latency (submit → completion, through
//! the streamed surface) and batch occupancy; a fourth compares routing
//! policies under a mixed small/large workload — the pinned default cutoff
//! (`RoutingPolicy::Fixed`) against the online-learned one
//! (`RoutingPolicy::Adaptive`), reporting throughput and where the learned
//! cutoff landed; a fifth runs the NUMA-sharded service under a forced
//! (`--topology NxM`) or detected topology and prints the per-node
//! occupancy table (dispatch counts, steals, busy time); a
//! metrics-overhead pass reruns the sync workload with the observability
//! endpoint live (`ServiceConfig::obs_addr`) to price `/metrics` + tracing
//! against the obs-off default (the `metrics_overhead` JSON section);
//! `--tenants` adds a multi-tenant QoS pass — an interactive deadlined
//! tenant, a batch tenant, and a flooding tenant sharing one weighted-fair
//! service — reported per tenant (latency percentiles, deadline-met rate,
//! shed count) in the `qos` JSON section; `--net` adds a loopback
//! wire-transport pass — the same request stream through a
//! `NetClient`/`NetServer` pair (operands uploaded once, submits by
//! handle) vs in-process `submit_streamed` on the same service — pricing
//! the TCP framing round trip in the `transport_overhead` JSON section;
//! a final error-aware pass prices `ServiceConfig::fault_policy` three
//! ways — monitor overhead on clean traffic (the Off-cost delta clean
//! nodes pay), escalation latency on a deliberately faulty node (requests
//! and wall time until that node's floor reaches `DetectCorrect`, with
//! the clean node's floor asserted untouched), and the operand-store
//! scrubber's verification throughput — in the `fault_policy` JSON
//! section. Everything is written as machine-readable
//! `bench_results/BENCH_serve_throughput.json` (per-node rows land in the
//! `numa.per_node` section) so the perf trajectory can be tracked across
//! PRs.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin serve_throughput
//!         [--reps N] [--threads N] [--smoke] [--topology NxM] [--tenants]
//!         [--net]`

use ftgemm_bench::{percentile, write_bench_json, Args, JsonValue, Table};
use ftgemm_core::Matrix;
use ftgemm_faults::{ErrorModel, FaultInjector, Rate};
use ftgemm_net::{NetClient, NetServer, NetServerConfig, NetSubmit, OperandStore};
use ftgemm_serve::exec::block_on_all;
use ftgemm_serve::{
    completion_channel, AdaptiveConfig, FaultPolicyConfig, FtPolicy, GemmRequest, GemmService,
    PlacementPolicy, Priority, RoutingPolicy, ServeError, ServiceConfig, StatsSnapshot,
    TenantTable, Topology, DEFAULT_SMALL_FLOPS_CUTOFF,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Small-GEMM edge; comfortably under any sane routing cutoff.
const DIM: usize = 64;
/// Above the default routing cutoff (2·224³ > 2·192³) — the "large" half
/// of the routing-policy comparison workload.
const LARGE_DIM: usize = 224;
/// Requests per timed run (shrunk under `--smoke`).
const REQUESTS: usize = 512;

/// Which submit/redeem surface a timed run exercises.
#[derive(Clone, Copy, PartialEq)]
enum Surface {
    /// `submit` + blocking `wait` per handle.
    Sync,
    /// `submit_async` futures driven by `ftgemm_serve::exec::block_on_all`.
    Async,
    /// `submit_streamed` into one completion channel, one drain loop.
    Streamed,
}

fn run_once(threads: usize, max_batch: usize, policy: FtPolicy, requests: usize) -> f64 {
    run_surface(threads, max_batch, policy, Surface::Sync, requests)
}

/// Per-request latency + occupancy: streamed submissions tagged with their
/// submit instant, latency measured when each completion is drained.
struct LatencyRun {
    latencies_us: Vec<f64>,
    rps: f64,
    mean_batch_occupancy: f64,
    batch_thread_occupancy: f64,
}

fn run_latency(threads: usize, max_batch: usize, policy: FtPolicy, requests: usize) -> LatencyRun {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        ..ServiceConfig::default()
    });
    let problems: Vec<_> = (0..requests as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();

    let (sink, mut completions) = completion_channel::<f64>();
    let mut submitted_at: HashMap<u64, Instant> = HashMap::with_capacity(requests);
    let t0 = Instant::now();
    for (a, b) in problems {
        let req = GemmRequest::builder(a, b)
            .ft(policy)
            .build()
            .expect("consistent shapes");
        let id = service
            .submit_streamed(req, &sink)
            .expect("submit_streamed");
        submitted_at.insert(id, Instant::now());
    }
    let mut latencies_us = Vec::with_capacity(requests);
    while let Some(completion) = completions.recv() {
        completion.result.expect("request failed");
        let submitted = submitted_at[&completion.id];
        latencies_us.push(submitted.elapsed().as_secs_f64() * 1e6);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(latencies_us.len(), requests);
    let snap = service.stats();
    LatencyRun {
        latencies_us,
        rps: requests as f64 / elapsed,
        mean_batch_occupancy: snap.mean_batch_occupancy,
        batch_thread_occupancy: snap.batch_thread_occupancy,
    }
}

fn run_surface(
    threads: usize,
    max_batch: usize,
    policy: FtPolicy,
    surface: Surface,
    requests: usize,
) -> f64 {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        ..ServiceConfig::default()
    });
    // Pre-build operands so the timed section measures serving, not RNG.
    let problems: Vec<_> = (0..requests as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();

    let t0 = Instant::now();
    match surface {
        Surface::Sync => {
            let handles: Vec<_> = problems
                .into_iter()
                .map(|(a, b)| {
                    service
                        .submit(GemmRequest::new(a, b).with_policy(policy))
                        .expect("submit")
                })
                .collect();
            for h in handles {
                h.wait().expect("request failed");
            }
        }
        Surface::Async => {
            let futures: Vec<_> = problems
                .into_iter()
                .map(|(a, b)| {
                    service
                        .submit_async(GemmRequest::new(a, b).with_policy(policy))
                        .expect("submit_async")
                })
                .collect();
            let results = block_on_all(futures);
            assert_eq!(results.len(), requests);
            for r in results {
                r.expect("request failed");
            }
        }
        Surface::Streamed => {
            let (sink, mut completions) = completion_channel::<f64>();
            for (a, b) in problems {
                service
                    .submit_streamed(GemmRequest::new(a, b).with_policy(policy), &sink)
                    .expect("submit_streamed");
            }
            let mut drained = 0;
            while let Some(c) = completions.recv() {
                c.result.expect("request failed");
                drained += 1;
            }
            assert_eq!(drained, requests);
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(service);
    requests as f64 / elapsed
}

/// One throughput run with the observability endpoint either absent
/// (`ServiceConfig::obs_addr = None`, the default measured everywhere else)
/// or live on a loopback port with lifecycle tracing and the turnaround
/// histogram recording — the "near-zero cost when disabled" claim, measured.
fn run_obs(threads: usize, max_batch: usize, requests: usize, obs: bool) -> f64 {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        obs_addr: obs.then(|| "127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::default()
    });
    let problems: Vec<_> = (0..requests as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();
    let t0 = Instant::now();
    let handles: Vec<_> = problems
        .into_iter()
        .map(|(a, b)| service.submit(GemmRequest::new(a, b)).expect("submit"))
        .collect();
    for h in handles {
        h.wait().expect("request failed");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    drop(service);
    requests as f64 / elapsed
}

/// One NUMA-sharded run: small GEMMs spread round-robin over the
/// topology's shard groups, drained streamed; reports throughput plus the
/// per-node occupancy picture (dispatch counts, steals, busy time).
struct NumaRun {
    rps: f64,
    per_node: Vec<NumaNodeRow>,
}

struct NumaNodeRow {
    node: usize,
    threads: usize,
    dispatched: u64,
    stolen: u64,
    busy_ms: f64,
}

fn run_numa(topology: Topology, requests: usize) -> NumaRun {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 0, // one worker per topology core
        max_batch: 16,
        topology: Some(topology),
        placement: PlacementPolicy::RoundRobin,
        ..ServiceConfig::default()
    });
    let problems: Vec<_> = (0..requests as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();
    let (sink, mut completions) = completion_channel::<f64>();
    let t0 = Instant::now();
    for (a, b) in problems {
        service
            .submit_streamed(GemmRequest::new(a, b), &sink)
            .expect("submit_streamed");
    }
    let mut drained = 0;
    while let Some(c) = completions.recv() {
        c.result.expect("request failed");
        drained += 1;
    }
    assert_eq!(drained, requests);
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = service.stats();
    let per_node = snap
        .per_node
        .iter()
        .map(|n| NumaNodeRow {
            node: n.node,
            threads: n.threads,
            dispatched: n.dispatched,
            stolen: n.stolen,
            busy_ms: n.batch_busy.as_secs_f64() * 1e3,
        })
        .collect();
    NumaRun {
        rps: requests as f64 / elapsed,
        per_node,
    }
}

/// One mixed small/large run under a given routing policy: half the
/// requests at `DIM` (batched under the seed cutoff), half at `LARGE_DIM`
/// (matrix-parallel under it), submitted streamed and drained.
struct RoutingRun {
    rps: f64,
    final_cutoff: u64,
    cutoff_updates: u64,
    batched_requests: u64,
    direct_large: u64,
}

fn run_routing(threads: usize, requests: usize, routing: RoutingPolicy) -> RoutingRun {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch: 16,
        routing,
        ..ServiceConfig::default()
    });
    let problems: Vec<_> = (0..requests as u64)
        .map(|i| {
            let dim = if i % 2 == 0 { DIM } else { LARGE_DIM };
            (
                Matrix::<f64>::random(dim, dim, i),
                Matrix::<f64>::random(dim, dim, i + 1_000),
            )
        })
        .collect();
    let (sink, mut completions) = completion_channel::<f64>();
    let t0 = Instant::now();
    for (a, b) in problems {
        service
            .submit_streamed(
                GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect),
                &sink,
            )
            .expect("submit_streamed");
    }
    let mut drained = 0;
    while let Some(c) = completions.recv() {
        c.result.expect("request failed");
        drained += 1;
    }
    assert_eq!(drained, requests);
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = service.stats();
    RoutingRun {
        rps: requests as f64 / elapsed,
        final_cutoff: snap.current_cutoff,
        cutoff_updates: snap.cutoff_updates,
        batched_requests: snap.batched_requests,
        direct_large: snap.direct_large,
    }
}

/// The `--tenants` mixed-priority QoS scenario: three tenants with very
/// different weights and classes share one service, and the run reports
/// what weighted-fair scheduling bought each of them — per-tenant latency
/// percentiles, deadline-met rate, and shed count.
struct QosRun {
    rps: f64,
    rows: Vec<QosTenantRow>,
}

struct QosTenantRow {
    tenant: u32,
    weight: u64,
    class: &'static str,
    submitted: usize,
    p50_us: f64,
    p99_us: f64,
    /// Percentage of deadline-carrying completions that met their deadline;
    /// 100 for tenants that attach no deadlines.
    deadline_met_pct: f64,
    shed: u64,
}

/// Tenant mix: an interactive tenant (weight 8, High class, every request
/// deadlined), a batch tenant (weight 2, Normal), and a misbehaving flood
/// tenant (weight 1, Low) that submits half of all traffic.
const QOS_TENANTS: [(u32, u64, Priority, &str); 3] = [
    (1, 8, Priority::High, "high"),
    (2, 2, Priority::Normal, "normal"),
    (3, 1, Priority::Low, "low"),
];

fn run_qos(threads: usize, max_batch: usize, requests: usize) -> QosRun {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        tenants: TenantTable::new().tenant(1, 8).tenant(2, 2).tenant(3, 1),
        ..ServiceConfig::default()
    });
    // i % 4: 0 -> interactive, 1 -> batch, 2 and 3 -> flood (half the load).
    let tenant_of = |i: usize| match i % 4 {
        0 => QOS_TENANTS[0],
        1 => QOS_TENANTS[1],
        _ => QOS_TENANTS[2],
    };
    let problems: Vec<_> = (0..requests as u64)
        .map(|i| {
            (
                Matrix::<f64>::random(DIM, DIM, i),
                Matrix::<f64>::random(DIM, DIM, i + 1_000),
            )
        })
        .collect();

    let (sink, mut completions) = completion_channel::<f64>();
    let mut tagged: HashMap<u64, (u32, Instant)> = HashMap::with_capacity(requests);
    let t0 = Instant::now();
    for (i, (a, b)) in problems.into_iter().enumerate() {
        let (tenant, _, class, _) = tenant_of(i);
        let mut req = GemmRequest::new(a, b)
            .with_tenant(tenant)
            .with_priority(class);
        if tenant == 1 {
            // Generous enough that a healthy service meets it; the learned
            // admission model and queue-expiry shedding both stay armed.
            req = req.with_deadline(Duration::from_secs(30));
        }
        let id = service
            .submit_streamed(req, &sink)
            .expect("submit_streamed");
        tagged.insert(id, (tenant, Instant::now()));
    }
    let mut latencies_us: HashMap<u32, Vec<f64>> = HashMap::new();
    while let Some(completion) = completions.recv() {
        let (tenant, submitted) = tagged[&completion.id];
        match completion.result {
            Ok(_) => latencies_us
                .entry(tenant)
                .or_default()
                .push(submitted.elapsed().as_secs_f64() * 1e6),
            // Shed requests show up in the snapshot's per-tenant counters.
            Err(ServeError::DeadlineExceeded(_)) => {}
            Err(e) => panic!("request failed: {e}"),
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let snap = service.shutdown();
    let rows = QOS_TENANTS
        .iter()
        .map(|&(tenant, weight, _, class)| {
            let lat = latencies_us.remove(&tenant).unwrap_or_default();
            let t = snap
                .per_tenant
                .iter()
                .find(|t| t.tenant == tenant)
                .copied()
                .unwrap_or_default();
            let dl_total = t.deadline_met + t.deadline_missed;
            QosTenantRow {
                tenant,
                weight,
                class,
                submitted: (0..requests).filter(|&i| tenant_of(i).0 == tenant).count(),
                p50_us: percentile(&lat, 50.0),
                p99_us: percentile(&lat, 99.0),
                deadline_met_pct: if dl_total == 0 {
                    100.0
                } else {
                    100.0 * t.deadline_met as f64 / dl_total as f64
                },
                shed: t.shed,
            }
        })
        .collect();
    QosRun {
        rps: requests as f64 / elapsed,
        rows,
    }
}

/// The `--net` loopback wire-transport comparison: the same request
/// stream driven twice against one service — once over TCP through a
/// `NetClient`/`NetServer` pair (operands uploaded once, every submit by
/// handle, stream completions drained off the socket) and once in-process
/// through `submit_streamed` with `Arc`-shared operands. The gap prices
/// the wire: framing, syscalls, and the connection's reader/pump threads.
struct NetRun {
    wire_rps: f64,
    inproc_rps: f64,
    wire_latencies_us: Vec<f64>,
    inproc_latencies_us: Vec<f64>,
}

fn run_net(threads: usize, max_batch: usize, requests: usize) -> NetRun {
    let service = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads,
        max_batch,
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig {
            // The whole run is pipelined before the first drain.
            max_in_flight: requests.max(64),
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback wire server");
    let a = Matrix::<f64>::random(DIM, DIM, 7);
    let b = Matrix::<f64>::random(DIM, DIM, 1_007);

    // Wire pass: upload A and B once, submit by handle, drain the pushed
    // stream completions.
    let mut client = NetClient::connect(server.addr()).expect("connect");
    let ha = client.upload(&a).expect("upload A");
    let hb = client.upload(&b).expect("upload B");
    let mut submitted_at: HashMap<u64, Instant> = HashMap::with_capacity(requests);
    let t0 = Instant::now();
    for _ in 0..requests {
        let id = client.submit(NetSubmit::new(ha, hb)).expect("submit");
        submitted_at.insert(id, Instant::now());
    }
    let mut wire_latencies_us = Vec::with_capacity(requests);
    for _ in 0..requests {
        let c = client.next_completion().expect("completion");
        wire_latencies_us.push(submitted_at[&c.id].elapsed().as_secs_f64() * 1e6);
        c.result.expect("wire request failed");
    }
    let wire_rps = requests as f64 / t0.elapsed().as_secs_f64();
    client.release(ha).expect("release A");
    client.release(hb).expect("release B");
    drop(client);

    // In-process pass: the same service and operand-sharing shape —
    // `Arc`-backed operands, one streamed submit per request.
    let (arc_a, arc_b) = (Arc::new(a), Arc::new(b));
    let (sink, mut completions) = completion_channel::<f64>();
    let mut submitted_at: HashMap<u64, Instant> = HashMap::with_capacity(requests);
    let t0 = Instant::now();
    for _ in 0..requests {
        let id = service
            .submit_streamed(GemmRequest::new(&arc_a, &arc_b), &sink)
            .expect("submit_streamed");
        submitted_at.insert(id, Instant::now());
    }
    let mut inproc_latencies_us = Vec::with_capacity(requests);
    while let Some(c) = completions.recv() {
        inproc_latencies_us.push(submitted_at[&c.id].elapsed().as_secs_f64() * 1e6);
        c.result.expect("in-process request failed");
    }
    let inproc_rps = requests as f64 / t0.elapsed().as_secs_f64();
    assert_eq!(inproc_latencies_us.len(), requests);
    server.stop();
    NetRun {
        wire_rps,
        inproc_rps,
        wire_latencies_us,
        inproc_latencies_us,
    }
}

/// The error-aware fault-policy pass: what arming
/// `ServiceConfig::fault_policy` costs on clean traffic, how quickly a
/// faulty node's policy floor escalates to `DetectCorrect`, and how fast
/// the wire frontend's operand-store scrubber re-verifies resident bytes.
struct FaultPolicyRun {
    monitor_off_rps: f64,
    monitor_on_rps: f64,
    escalation_requests: u64,
    escalation_us: f64,
    escalated_floor: u8,
    clean_node_floor: u8,
    scrub_verified: u64,
    scrub_verified_per_sec: f64,
}

/// Escalation-scenario edge: large enough that one `Rate::Count`-driven
/// detection per request pushes the per-node EWMA over the thresholds in
/// a handful of requests (mirrors `tests/integration_faults_serve.rs`).
const ESC_DIM: usize = 96;

fn node_floor(snap: &StatsSnapshot, node: usize) -> u8 {
    snap.per_node
        .iter()
        .find(|n| n.node == node)
        .map(|n| n.ft_floor)
        .unwrap_or(0)
}

fn run_fault_policy(threads: usize, max_batch: usize, requests: usize) -> FaultPolicyRun {
    // Monitor overhead: the same clean sync Off-policy workload with the
    // monitor absent vs armed. Clean traffic never trips the default
    // thresholds, so the delta is pure bookkeeping — the Off-cost clean
    // nodes pay for error-awareness.
    let clean_rps = |fault_policy: Option<FaultPolicyConfig>| {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads,
            max_batch,
            fault_policy,
            ..ServiceConfig::default()
        });
        let problems: Vec<_> = (0..requests as u64)
            .map(|i| {
                (
                    Matrix::<f64>::random(DIM, DIM, i),
                    Matrix::<f64>::random(DIM, DIM, i + 1_000),
                )
            })
            .collect();
        let t0 = Instant::now();
        let handles: Vec<_> = problems
            .into_iter()
            .map(|(a, b)| service.submit(GemmRequest::new(a, b)).expect("submit"))
            .collect();
        for h in handles {
            h.wait().expect("request failed");
        }
        requests as f64 / t0.elapsed().as_secs_f64()
    };
    let monitor_off_rps = clean_rps(None);
    let monitor_on_rps = clean_rps(Some(FaultPolicyConfig::default()));

    // Escalation latency: a two-node synthetic service with tight
    // thresholds; faulty requests pinned to node 0 until its floor hits
    // DetectCorrect. Node 1 sees no traffic and must keep floor Off.
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 0,
        max_batch: 4,
        routing: RoutingPolicy::Fixed(2 * (ESC_DIM as u64).pow(3)),
        topology: Some(Topology::synthetic(2, 2)),
        placement: PlacementPolicy::OperandHome,
        fault_policy: Some(FaultPolicyConfig {
            tau_flops: 2.0e6,
            detect_threshold: 1.0e-7,
            correct_threshold: 4.0e-7,
            quiet_flops: u64::MAX,
        }),
        ..ServiceConfig::default()
    });
    let mut escalation_requests = 0u64;
    let t0 = Instant::now();
    for i in 0..32u64 {
        let a = Matrix::<f64>::random(ESC_DIM, ESC_DIM, 9_000 + i);
        let b = Matrix::<f64>::random(ESC_DIM, ESC_DIM, 9_100 + i);
        let inj = FaultInjector::new(
            9_200 + i,
            ErrorModel::Additive { magnitude: 1.0e6 },
            Rate::Count(4),
        );
        let req = GemmRequest::new(a, b)
            .with_policy(FtPolicy::DetectCorrect)
            .with_home(0)
            .with_injector(inj);
        service
            .submit(req)
            .expect("submit")
            .wait()
            .expect("faulty request failed");
        escalation_requests += 1;
        if node_floor(&service.stats(), 0) == 2 {
            break;
        }
    }
    let escalation_us = t0.elapsed().as_secs_f64() * 1e6;
    let snap = service.stats();
    let escalated_floor = node_floor(&snap, 0);
    let clean_node_floor = node_floor(&snap, 1);
    drop(service);

    // Scrubber throughput: a resident population of small operands,
    // repeatedly re-verified against their upload-time checksums.
    const SCRUB_RESIDENT: usize = 64;
    const SCRUB_PASSES: usize = 32;
    let store = OperandStore::new(u64::MAX);
    for i in 0..SCRUB_RESIDENT as u64 {
        store
            .insert(Matrix::<f64>::random(DIM, DIM, 20_000 + i))
            .expect("insert operand");
    }
    let t0 = Instant::now();
    for _ in 0..SCRUB_PASSES {
        store.scrub(SCRUB_RESIDENT);
    }
    let scrub_elapsed = t0.elapsed().as_secs_f64();
    let scrub_verified = store.scrub_verified();

    FaultPolicyRun {
        monitor_off_rps,
        monitor_on_rps,
        escalation_requests,
        escalation_us,
        escalated_floor,
        clean_node_floor,
        scrub_verified,
        scrub_verified_per_sec: scrub_verified as f64 / scrub_elapsed,
    }
}

fn main() {
    let args = Args::parse();
    let threads = args.threads;
    let requests = if args.smoke { 48 } else { REQUESTS };
    println!(
        "serve_throughput: {requests} x {DIM}^3 DGEMM requests, {threads} threads, \
         best of {} runs{}\n",
        args.reps.max(1),
        if args.smoke { " (smoke mode)" } else { "" }
    );

    let mut table = Table::new(
        "GemmService throughput — requests/sec (higher is better)",
        &[
            "max_batch",
            "ft off",
            "ft on (DetectCorrect)",
            "ft overhead",
        ],
    );
    let mut json_batch_rows = JsonValue::arr();
    for &max_batch in &[1usize, 8, 64] {
        let best = |policy: FtPolicy| {
            (0..args.reps.max(1))
                .map(|_| run_once(threads, max_batch, policy, requests))
                .fold(0.0f64, f64::max)
        };
        let off = best(FtPolicy::Off);
        let on = best(FtPolicy::DetectCorrect);
        table.row(vec![
            max_batch.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
            format!("{:.1}%", (off / on - 1.0) * 100.0),
        ]);
        json_batch_rows = json_batch_rows.push(
            JsonValue::obj()
                .field("max_batch", max_batch)
                .field("ft_off_rps", off)
                .field("ft_on_rps", on),
        );
        eprintln!("max_batch {max_batch} done");
    }
    table.print();
    match table.write_csv(&args.out_dir, "serve_throughput") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }

    // Second table: submission-surface overhead at a fixed coalescing limit.
    const SURFACE_BATCH: usize = 32;
    let mut surfaces = Table::new(
        "Submit-surface overhead — requests/sec at max_batch 32 (higher is better)",
        &["surface", "ft off", "ft on (DetectCorrect)"],
    );
    let mut json_surface_rows = JsonValue::arr();
    for (name, key, surface) in [
        ("sync (submit + wait)", "sync", Surface::Sync),
        ("async futures (block_on)", "async", Surface::Async),
        ("streamed (completion chan)", "streamed", Surface::Streamed),
    ] {
        let best = |policy: FtPolicy| {
            (0..args.reps.max(1))
                .map(|_| run_surface(threads, SURFACE_BATCH, policy, surface, requests))
                .fold(0.0f64, f64::max)
        };
        let off = best(FtPolicy::Off);
        let on = best(FtPolicy::DetectCorrect);
        surfaces.row(vec![
            name.to_string(),
            format!("{off:.0}"),
            format!("{on:.0}"),
        ]);
        json_surface_rows = json_surface_rows.push(
            JsonValue::obj()
                .field("surface", key)
                .field("ft_off_rps", off)
                .field("ft_on_rps", on),
        );
        eprintln!("surface '{name}' done");
    }
    surfaces.print();
    match surfaces.write_csv(&args.out_dir, "serve_surfaces") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }

    // Third pass: per-request latency distribution + batch occupancy at the
    // fixed coalescing limit, with fault tolerance on and off.
    let mut latency_table = Table::new(
        &format!("Per-request latency — streamed surface at max_batch {SURFACE_BATCH}"),
        &["policy", "p50 (us)", "p99 (us)", "req/s", "occupancy"],
    );
    let mut json_latency = JsonValue::arr();
    for (name, policy) in [
        ("ft off", FtPolicy::Off),
        ("ft on (DetectCorrect)", FtPolicy::DetectCorrect),
    ] {
        let run = run_latency(threads, SURFACE_BATCH, policy, requests);
        let p50 = percentile(&run.latencies_us, 50.0);
        let p99 = percentile(&run.latencies_us, 99.0);
        latency_table.row(vec![
            name.to_string(),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
            format!("{:.0}", run.rps),
            format!("{:.2}", run.batch_thread_occupancy),
        ]);
        json_latency = json_latency.push(
            JsonValue::obj()
                .field("policy", name)
                .field("p50_latency_us", p50)
                .field("p99_latency_us", p99)
                .field("throughput_rps", run.rps)
                .field("mean_batch_occupancy", run.mean_batch_occupancy)
                .field("batch_thread_occupancy", run.batch_thread_occupancy),
        );
        eprintln!("latency '{name}' done");
    }
    latency_table.print();

    // Fourth pass: routing policy — the pinned default cutoff vs the
    // online-learned one, under a mixed small/large workload.
    let mut routing_table = Table::new(
        &format!(
            "Routing policy — mixed {DIM}^3/{LARGE_DIM}^3 workload, DetectCorrect \
             (seed cutoff {DEFAULT_SMALL_FLOPS_CUTOFF})"
        ),
        &[
            "policy",
            "req/s",
            "final cutoff",
            "updates",
            "batched",
            "large",
        ],
    );
    let mut json_routing = JsonValue::arr();
    for (name, key, policy) in [
        (
            "fixed (default cutoff)",
            "fixed",
            RoutingPolicy::Fixed(DEFAULT_SMALL_FLOPS_CUTOFF),
        ),
        (
            "adaptive (learned)",
            "adaptive",
            RoutingPolicy::Adaptive(AdaptiveConfig::default()),
        ),
    ] {
        let mut best: Option<RoutingRun> = None;
        for _ in 0..args.reps.max(1) {
            let run = run_routing(threads, requests, policy);
            if best.as_ref().is_none_or(|b| run.rps > b.rps) {
                best = Some(run);
            }
        }
        let run = best.expect("at least one rep");
        routing_table.row(vec![
            name.to_string(),
            format!("{:.0}", run.rps),
            run.final_cutoff.to_string(),
            run.cutoff_updates.to_string(),
            run.batched_requests.to_string(),
            run.direct_large.to_string(),
        ]);
        json_routing = json_routing.push(
            JsonValue::obj()
                .field("policy", key)
                .field("rps", run.rps)
                .field("final_cutoff", run.final_cutoff)
                .field("cutoff_updates", run.cutoff_updates)
                .field("batched_requests", run.batched_requests)
                .field("direct_large", run.direct_large),
        );
        eprintln!("routing '{name}' done");
    }
    routing_table.print();

    // Metrics-overhead pass: the same sync workload with the observability
    // endpoint off (the state every other pass measures) and on (endpoint
    // bound, tracing + turnaround histogram live) — the price of obs_addr.
    let best_obs = |obs: bool| {
        (0..args.reps.max(1))
            .map(|_| run_obs(threads, SURFACE_BATCH, requests, obs))
            .fold(0.0f64, f64::max)
    };
    let obs_off_rps = best_obs(false);
    let obs_on_rps = best_obs(true);
    let overhead_pct = (obs_off_rps / obs_on_rps - 1.0) * 100.0;
    let mut obs_table = Table::new(
        &format!("Observability overhead — sync surface at max_batch {SURFACE_BATCH}"),
        &["obs endpoint", "req/s"],
    );
    obs_table.row(vec![
        "off (obs_addr: None)".to_string(),
        format!("{obs_off_rps:.0}"),
    ]);
    obs_table.row(vec![
        "on (/metrics + tracing)".to_string(),
        format!("{obs_on_rps:.0}"),
    ]);
    obs_table.print();
    println!("observability overhead: {overhead_pct:.2}%");

    // Fifth pass: NUMA-sharded serving — per-node shard groups and pinned
    // worker subsets under a forced (`--topology NxM`) or detected
    // topology, requests spread round-robin so the table shows how evenly
    // the nodes carry the load.
    let (topology, forced) = match args.topology {
        Some((n, m)) => (Topology::synthetic(n, m), true),
        None => (Topology::detect(), false),
    };
    let topo_desc: String = topology
        .nodes()
        .iter()
        .map(|n| n.cores.to_string())
        .collect::<Vec<_>>()
        .join("+");
    let numa = run_numa(topology.clone(), requests);
    let mut numa_table = Table::new(
        &format!(
            "NUMA-sharded serving — {} topology [{topo_desc} cores], round-robin placement",
            if forced { "forced" } else { "detected" }
        ),
        &["node", "threads", "dispatched", "stolen", "busy (ms)"],
    );
    let mut json_numa_rows = JsonValue::arr();
    for row in &numa.per_node {
        numa_table.row(vec![
            row.node.to_string(),
            row.threads.to_string(),
            row.dispatched.to_string(),
            row.stolen.to_string(),
            format!("{:.1}", row.busy_ms),
        ]);
        json_numa_rows = json_numa_rows.push(
            JsonValue::obj()
                .field("node", row.node)
                .field("threads", row.threads)
                .field("dispatched", row.dispatched)
                .field("stolen", row.stolen)
                .field("busy_ms", row.busy_ms),
        );
    }
    numa_table.print();
    println!(
        "numa run: {:.0} req/s over {} nodes",
        numa.rps,
        topology.num_nodes()
    );

    // Sixth pass (`--tenants`): the mixed-priority multi-tenant scenario —
    // what weighted-fair scheduling, deadlines, and shedding look like when
    // an interactive tenant, a batch tenant, and a flooding tenant share
    // the service.
    let qos = args.tenants.then(|| {
        let run = run_qos(threads, SURFACE_BATCH, requests);
        let mut qos_table = Table::new(
            &format!("Multi-tenant QoS — mixed-priority mix at max_batch {SURFACE_BATCH}"),
            &[
                "tenant",
                "weight",
                "class",
                "requests",
                "p50 (us)",
                "p99 (us)",
                "deadline met",
                "shed",
            ],
        );
        let mut json_rows = JsonValue::arr();
        for row in &run.rows {
            qos_table.row(vec![
                row.tenant.to_string(),
                row.weight.to_string(),
                row.class.to_string(),
                row.submitted.to_string(),
                format!("{:.0}", row.p50_us),
                format!("{:.0}", row.p99_us),
                format!("{:.0}%", row.deadline_met_pct),
                row.shed.to_string(),
            ]);
            json_rows = json_rows.push(
                JsonValue::obj()
                    .field("tenant", u64::from(row.tenant))
                    .field("weight", row.weight)
                    .field("class", row.class)
                    .field("requests", row.submitted)
                    .field("p50_latency_us", row.p50_us)
                    .field("p99_latency_us", row.p99_us)
                    .field("deadline_met_pct", row.deadline_met_pct)
                    .field("shed", row.shed),
            );
        }
        qos_table.print();
        println!("qos run: {:.0} req/s across 3 tenants", run.rps);
        JsonValue::obj()
            .field("max_batch", SURFACE_BATCH)
            .field("rps", run.rps)
            .field("per_tenant", json_rows)
    });

    // Seventh pass (`--net`): the loopback wire-transport comparison —
    // the same request stream over TCP (handles + stream completions) vs
    // in-process streamed submits on one shared service.
    let net = args.net.then(|| {
        let run = run_net(threads, SURFACE_BATCH, requests);
        let overhead_pct = (run.inproc_rps / run.wire_rps - 1.0) * 100.0;
        let wire_p50 = percentile(&run.wire_latencies_us, 50.0);
        let wire_p99 = percentile(&run.wire_latencies_us, 99.0);
        let inproc_p50 = percentile(&run.inproc_latencies_us, 50.0);
        let inproc_p99 = percentile(&run.inproc_latencies_us, 99.0);
        let mut net_table = Table::new(
            &format!(
                "Transport overhead — loopback wire vs in-process at max_batch {SURFACE_BATCH}"
            ),
            &["transport", "req/s", "p50 (us)", "p99 (us)"],
        );
        net_table.row(vec![
            "wire (NetClient, handles)".to_string(),
            format!("{:.0}", run.wire_rps),
            format!("{wire_p50:.0}"),
            format!("{wire_p99:.0}"),
        ]);
        net_table.row(vec![
            "in-process (submit_streamed)".to_string(),
            format!("{:.0}", run.inproc_rps),
            format!("{inproc_p50:.0}"),
            format!("{inproc_p99:.0}"),
        ]);
        net_table.print();
        println!("transport overhead: {overhead_pct:.2}%");
        JsonValue::obj()
            .field("max_batch", SURFACE_BATCH)
            .field("requests", requests)
            .field("wire_rps", run.wire_rps)
            .field("in_process_rps", run.inproc_rps)
            .field("overhead_pct", overhead_pct)
            .field("wire_p50_us", wire_p50)
            .field("wire_p99_us", wire_p99)
            .field("in_process_p50_us", inproc_p50)
            .field("in_process_p99_us", inproc_p99)
    });

    // Eighth pass: the error-aware fault-policy layer — what the monitor
    // costs on clean traffic, how fast a faulty node escalates to the
    // DetectCorrect floor, and the operand-store scrubber's throughput.
    let fp = run_fault_policy(threads, SURFACE_BATCH, requests);
    let monitor_overhead_pct = (fp.monitor_off_rps / fp.monitor_on_rps - 1.0) * 100.0;
    let mut fp_table = Table::new(
        "Error-aware fault policy — monitor cost, escalation latency, scrub throughput",
        &["measure", "value"],
    );
    fp_table.row(vec![
        "clean rps, monitor off".to_string(),
        format!("{:.0}", fp.monitor_off_rps),
    ]);
    fp_table.row(vec![
        "clean rps, monitor on".to_string(),
        format!("{:.0}", fp.monitor_on_rps),
    ]);
    fp_table.row(vec![
        "monitor overhead".to_string(),
        format!("{monitor_overhead_pct:.2}%"),
    ]);
    fp_table.row(vec![
        "faulty requests to DetectCorrect floor".to_string(),
        fp.escalation_requests.to_string(),
    ]);
    fp_table.row(vec![
        "escalation wall time (us)".to_string(),
        format!("{:.0}", fp.escalation_us),
    ]);
    fp_table.row(vec![
        "clean-node floor after campaign".to_string(),
        fp.clean_node_floor.to_string(),
    ]);
    fp_table.row(vec![
        "scrub verifications/sec".to_string(),
        format!("{:.0}", fp.scrub_verified_per_sec),
    ]);
    fp_table.print();
    println!(
        "fault policy: node 0 floor {} after {} faulty requests; node 1 floor {}",
        fp.escalated_floor, fp.escalation_requests, fp.clean_node_floor
    );

    let json = JsonValue::obj()
        .field("bench", "serve_throughput")
        .field("requests", requests)
        .field("smoke", args.smoke)
        .field("dim", DIM)
        .field("threads", threads)
        .field("reps", args.reps.max(1))
        .field("throughput_by_max_batch", json_batch_rows)
        .field(
            "throughput_by_surface",
            JsonValue::obj()
                .field("max_batch", SURFACE_BATCH)
                .field("rows", json_surface_rows),
        )
        .field(
            "latency",
            JsonValue::obj()
                .field("surface", "streamed")
                .field("max_batch", SURFACE_BATCH)
                .field("rows", json_latency),
        )
        .field(
            "routing",
            JsonValue::obj()
                .field("small_dim", DIM)
                .field("large_dim", LARGE_DIM)
                .field("seed_cutoff", DEFAULT_SMALL_FLOPS_CUTOFF)
                .field("rows", json_routing),
        )
        .field(
            "metrics_overhead",
            JsonValue::obj()
                .field("surface", "sync")
                .field("max_batch", SURFACE_BATCH)
                .field("obs_off_rps", obs_off_rps)
                .field("obs_on_rps", obs_on_rps)
                .field("overhead_pct", overhead_pct),
        )
        .field(
            "numa",
            JsonValue::obj()
                .field("forced", forced)
                .field("nodes", topology.num_nodes())
                .field("total_cores", topology.total_cores())
                .field("placement", "round_robin")
                .field("rps", numa.rps)
                .field("per_node", json_numa_rows),
        )
        .field(
            "fault_policy",
            JsonValue::obj()
                .field("monitor_off_rps", fp.monitor_off_rps)
                .field("monitor_on_rps", fp.monitor_on_rps)
                .field("monitor_overhead_pct", monitor_overhead_pct)
                .field("escalation_dim", ESC_DIM)
                .field("escalation_requests", fp.escalation_requests)
                .field("escalation_us", fp.escalation_us)
                .field("escalated_floor", u64::from(fp.escalated_floor))
                .field("clean_node_floor", u64::from(fp.clean_node_floor))
                .field("scrub_verified_total", fp.scrub_verified)
                .field("scrub_verified_per_sec", fp.scrub_verified_per_sec),
        );
    let json = match qos {
        Some(qos) => json.field("qos", qos),
        None => json,
    };
    let json = match net {
        Some(net) => json.field("transport_overhead", net),
        None => json,
    };
    match write_bench_json(&args.out_dir, "serve_throughput", &json) {
        Ok(p) => println!("\nJSON written to {}", p.display()),
        Err(e) => eprintln!("JSON write failed: {e}"),
    }
}
