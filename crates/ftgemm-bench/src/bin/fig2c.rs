//! Figure 2(c): serial performance under error injection.
//!
//! The library curves run clean (the paper injects into *its own* kernels);
//! the FT curve tolerates `--errors` injected errors per run (paper: 20)
//! while its output is validated against a clean reference.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin fig2c [--errors 20]`

use ftgemm_bench::{gflops, measure, Args, Table};
use ftgemm_core::Matrix;
use ftgemm_faults::FaultInjector;

fn main() {
    let args = Args::parse();
    let sizes = args.serial_sizes();
    let injector = FaultInjector::counted(0xEC, args.errors);
    let mut suite = ftgemm_bench::runners::serial_suite(Some(injector.clone()));

    let mut headers: Vec<&str> = vec!["size"];
    let names: Vec<String> = suite.iter().map(|r| r.name().to_string()).collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    headers.push("FT corrected");
    let mut table = Table::new(
        &format!(
            "Fig 2(c) — Error injection, Serial ({} errors/run on FT): GFLOPS",
            args.errors
        ),
        &headers,
    );

    for &s in &sizes {
        let a = Matrix::<f64>::random(s, s, 0xA);
        let b = Matrix::<f64>::random(s, s, 0xB);
        let mut row = vec![s.to_string()];
        injector.stats().reset();
        for runner in &mut suite {
            let mut c = Matrix::<f64>::zeros(s, s);
            let meas = measure(args.warmup, args.reps, || {
                runner.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            });
            row.push(format!("{:.2}", gflops(s, s, s, meas.avg)));
            eprint!(".");
        }
        row.push(format!(
            "{}/{}",
            injector.stats().corrected(),
            injector.stats().injected()
        ));
        eprintln!(" {s} done ({})", injector.stats().summary());
        table.row(row);
    }

    table.print();
    println!("\ninjector totals: {}", injector.stats().summary());
    match table.write_csv(&args.out_dir, "fig2c") {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
