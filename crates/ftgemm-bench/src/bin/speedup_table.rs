//! Experiment T3: FT-GEMM (with FT on) speed relative to the library
//! stand-ins, serial and parallel.
//!
//! Paper claims: +3.5% .. +22.1% over the three libraries overall; under
//! serial injection +22.89% vs OpenBLAS, +21.56% vs BLIS, +4.98% vs MKL;
//! parallel +16.83% vs BLIS, comparable to OpenBLAS, slightly below MKL.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin speedup_table`

use ftgemm_bench::{measure, Args, Table};
use ftgemm_core::Matrix;

fn geomean(v: &[f64]) -> f64 {
    let s: f64 = v.iter().map(|x| x.ln()).sum();
    (s / v.len().max(1) as f64).exp()
}

fn run_suite(args: &Args, sizes: &[usize], parallel: bool) -> (Vec<String>, Vec<Vec<f64>>) {
    let mut suite = if parallel {
        ftgemm_bench::runners::parallel_suite(args.threads, None)
    } else {
        ftgemm_bench::runners::serial_suite(None)
    };
    let names: Vec<String> = suite.iter().map(|r| r.name().to_string()).collect();
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); suite.len()];
    for &s in sizes {
        let a = Matrix::<f64>::random(s, s, 1);
        let b = Matrix::<f64>::random(s, s, 2);
        for (i, runner) in suite.iter_mut().enumerate() {
            let mut c = Matrix::<f64>::zeros(s, s);
            let meas = measure(args.warmup, args.reps, || {
                runner.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            });
            // Min-of-reps: noise-robust on shared machines.
            times[i].push(meas.min);
        }
        eprintln!("{} {s} done", if parallel { "par" } else { "ser" });
    }
    (names, times)
}

fn main() {
    let args = Args::parse();

    let mut table = Table::new(
        "T3 — FT-GEMM:FT speed relative to each comparator (geomean over sweep; >0% means FT-GEMM faster)",
        &["mode", "vs MKL*", "vs OpenBLAS*", "vs BLIS*", "vs Ori"],
    );

    for (mode, sizes, parallel) in [
        ("serial", args.serial_sizes(), false),
        ("parallel", args.parallel_sizes(), true),
    ] {
        let (names, times) = run_suite(&args, &sizes, parallel);
        let ft_idx = names.iter().position(|n| n == "FT-GEMM: FT").unwrap();
        let rel = |other: &str| -> String {
            let oi = names.iter().position(|n| n == other).unwrap();
            let ratios: Vec<f64> = times[oi]
                .iter()
                .zip(&times[ft_idx])
                .map(|(o, f)| o / f)
                .collect();
            format!("{:+.2}%", (geomean(&ratios) - 1.0) * 100.0)
        };
        table.row(vec![
            mode.to_string(),
            rel("MKL*"),
            rel("OpenBLAS*"),
            rel("BLIS*"),
            rel("FT-GEMM: Ori"),
        ]);
    }

    table.print();
    println!(
        "\npaper reference: serial +4.98% vs MKL, +22.89% vs OpenBLAS, +21.56% vs BLIS;\n\
         parallel: slightly below MKL, comparable to OpenBLAS, +16.83% vs BLIS;\n\
         vs Ori = -(FT overhead)."
    );
    match table.write_csv(&args.out_dir, "speedup_table") {
        Ok(p) => println!("CSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
