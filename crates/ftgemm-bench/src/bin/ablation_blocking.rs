//! Ablation A2: blocking-parameter and ISA-tier sensitivity (the design
//! choices of paper §2.1 — "the step sizes of these three for loops ...
//! \[are\] determined by the size of each layer of the cache").
//!
//! Part 1: GFLOPS per ISA tier at a fixed size (value of AVX-512 kernels).
//! Part 2: GFLOPS over an (MC, KC) grid around the cache-derived defaults.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin ablation_blocking`

use ftgemm_bench::{measure, Args, Table};
use ftgemm_core::{gemm_with_params, BlockingParams, CacheInfo, IsaLevel, Matrix};

fn main() {
    let args = Args::parse();
    let s = args
        .sizes
        .as_ref()
        .and_then(|v| v.first().copied())
        .unwrap_or(768);
    let a = Matrix::<f64>::random(s, s, 1);
    let b = Matrix::<f64>::random(s, s, 2);

    // Part 1: ISA tiers.
    let mut tier_table = Table::new(
        &format!("A2.1 — micro-kernel ISA tier at {s}^3 (serial)"),
        &["tier", "MRxNR", "GFLOPS"],
    );
    for isa in IsaLevel::available() {
        let kernel = ftgemm_core::select_kernel::<f64>(isa);
        let params = BlockingParams::derive::<f64>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        let mut c = Matrix::<f64>::zeros(s, s);
        let t = measure(args.warmup, args.reps, || {
            gemm_with_params(
                isa,
                params,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        tier_table.row(vec![
            isa.to_string(),
            format!("{}x{}", kernel.mr, kernel.nr),
            format!("{:.2}", t.gflops(s, s, s)),
        ]);
        eprintln!("tier {isa} done");
    }
    tier_table.print();

    // Part 2: (MC, KC) grid at the best tier.
    let isa = IsaLevel::detect();
    let kernel = ftgemm_core::select_kernel::<f64>(isa);
    let base = BlockingParams::derive::<f64>(&CacheInfo::detect(), kernel.mr, kernel.nr);
    let mc_grid: Vec<usize> = [base.mc / 4, base.mc / 2, base.mc, base.mc * 2]
        .iter()
        .map(|&v| v.max(kernel.mr) / kernel.mr * kernel.mr)
        .collect();
    let kc_grid: Vec<usize> = vec![base.kc / 4, base.kc / 2, base.kc, base.kc * 2];

    let mut headers: Vec<String> = vec!["MC \\ KC".to_string()];
    headers.extend(kc_grid.iter().map(|k| k.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut grid_table = Table::new(
        &format!(
            "A2.2 — GFLOPS over (MC, KC) grid at {s}^3 (cache-derived default: MC={}, KC={})",
            base.mc, base.kc
        ),
        &headers_ref,
    );
    for &mc in &mc_grid {
        let mut row = vec![mc.to_string()];
        for &kc in &kc_grid {
            let params = base.with_blocks(mc, base.nc, kc.max(1));
            let mut c = Matrix::<f64>::zeros(s, s);
            let t = measure(args.warmup, args.reps, || {
                gemm_with_params(
                    isa,
                    params,
                    1.0,
                    &a.as_ref(),
                    &b.as_ref(),
                    1.0,
                    &mut c.as_mut(),
                )
                .unwrap();
            });
            row.push(format!("{:.2}", t.gflops(s, s, s)));
        }
        grid_table.row(row);
        eprintln!("mc {mc} done");
    }
    grid_table.print();

    let _ = tier_table.write_csv(&args.out_dir, "ablation_isa");
    match grid_table.write_csv(&args.out_dir, "ablation_blocking") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
