//! Ablation A2: blocking-parameter and ISA-tier sensitivity (the design
//! choices of paper §2.1 — "the step sizes of these three for loops ...
//! \[are\] determined by the size of each layer of the cache").
//!
//! Part 1: GFLOPS per ISA tier at a fixed size (value of AVX-512 kernels).
//! Part 2: GFLOPS over an (MC, KC) grid around the cache-derived defaults.
//!
//! Besides the console tables / CSVs, the full sweep (per-point throughput
//! plus p50/p99 of the per-repetition times) is written as machine-readable
//! `bench_results/BENCH_ablation_blocking.json` for cross-PR tracking.
//!
//! Usage: `cargo run -p ftgemm-bench --release --bin ablation_blocking
//!         [--sizes N] [--reps N] [--smoke]`

use ftgemm_bench::{gflops, percentile, write_bench_json, Args, JsonValue, Table};
use ftgemm_core::{gemm_with_params, BlockingParams, CacheInfo, IsaLevel, Matrix};

fn main() {
    let args = Args::parse();
    let s = args
        .sizes
        .as_ref()
        .and_then(|v| v.first().copied())
        .unwrap_or(if args.smoke { 96 } else { 768 });
    let a = Matrix::<f64>::random(s, s, 1);
    let b = Matrix::<f64>::random(s, s, 2);

    // Part 1: ISA tiers.
    let mut tier_table = Table::new(
        &format!("A2.1 — micro-kernel ISA tier at {s}^3 (serial)"),
        &["tier", "MRxNR", "GFLOPS"],
    );
    let mut json_tiers = JsonValue::arr();
    for isa in IsaLevel::available() {
        let kernel = ftgemm_core::select_kernel::<f64>(isa);
        let params = BlockingParams::derive::<f64>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        let mut c = Matrix::<f64>::zeros(s, s);
        let times = ftgemm_bench::measure_times(args.warmup, args.reps, || {
            gemm_with_params(
                isa,
                params,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });
        let avg = times.iter().sum::<f64>() / times.len() as f64;
        tier_table.row(vec![
            isa.to_string(),
            format!("{}x{}", kernel.mr, kernel.nr),
            format!("{:.2}", gflops(s, s, s, avg)),
        ]);
        json_tiers = json_tiers.push(
            JsonValue::obj()
                .field("tier", isa.to_string())
                .field("micro_tile", format!("{}x{}", kernel.mr, kernel.nr))
                .field("gflops", gflops(s, s, s, avg))
                .field("p50_latency_us", percentile(&times, 50.0) * 1e6)
                .field("p99_latency_us", percentile(&times, 99.0) * 1e6),
        );
        eprintln!("tier {isa} done");
    }
    tier_table.print();

    // Part 2: (MC, KC) grid at the best tier.
    let isa = IsaLevel::detect();
    let kernel = ftgemm_core::select_kernel::<f64>(isa);
    let base = BlockingParams::derive::<f64>(&CacheInfo::detect(), kernel.mr, kernel.nr);
    let mc_grid: Vec<usize> = [base.mc / 4, base.mc / 2, base.mc, base.mc * 2]
        .iter()
        .map(|&v| v.max(kernel.mr) / kernel.mr * kernel.mr)
        .collect();
    let kc_grid: Vec<usize> = vec![base.kc / 4, base.kc / 2, base.kc, base.kc * 2];

    let mut headers: Vec<String> = vec!["MC \\ KC".to_string()];
    headers.extend(kc_grid.iter().map(|k| k.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut grid_table = Table::new(
        &format!(
            "A2.2 — GFLOPS over (MC, KC) grid at {s}^3 (cache-derived default: MC={}, KC={})",
            base.mc, base.kc
        ),
        &headers_ref,
    );
    let mut json_grid = JsonValue::arr();
    for &mc in &mc_grid {
        let mut row = vec![mc.to_string()];
        for &kc in &kc_grid {
            let params = base.with_blocks(mc, base.nc, kc.max(1));
            let mut c = Matrix::<f64>::zeros(s, s);
            let times = ftgemm_bench::measure_times(args.warmup, args.reps, || {
                gemm_with_params(
                    isa,
                    params,
                    1.0,
                    &a.as_ref(),
                    &b.as_ref(),
                    1.0,
                    &mut c.as_mut(),
                )
                .unwrap();
            });
            let avg = times.iter().sum::<f64>() / times.len() as f64;
            row.push(format!("{:.2}", gflops(s, s, s, avg)));
            json_grid = json_grid.push(
                JsonValue::obj()
                    .field("mc", mc)
                    .field("kc", kc.max(1))
                    .field("gflops", gflops(s, s, s, avg))
                    .field("p50_latency_us", percentile(&times, 50.0) * 1e6)
                    .field("p99_latency_us", percentile(&times, 99.0) * 1e6),
            );
        }
        grid_table.row(row);
        eprintln!("mc {mc} done");
    }
    grid_table.print();

    let _ = tier_table.write_csv(&args.out_dir, "ablation_isa");
    match grid_table.write_csv(&args.out_dir, "ablation_blocking") {
        Ok(p) => println!("\nCSV written to {}", p.display()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }

    let json = JsonValue::obj()
        .field("bench", "ablation_blocking")
        .field("size", s)
        .field("reps", args.reps.max(1))
        .field("default_mc", base.mc)
        .field("default_kc", base.kc)
        .field("isa_tiers", json_tiers)
        .field(
            "blocking_grid",
            JsonValue::obj()
                .field("tier", isa.to_string())
                .field("points", json_grid),
        );
    match write_bench_json(&args.out_dir, "ablation_blocking", &json) {
        Ok(p) => println!("JSON written to {}", p.display()),
        Err(e) => eprintln!("JSON write failed: {e}"),
    }
}
