//! Uniform interface over every GEMM implementation the figures compare.
//!
//! The paper's five curves are MKL, OpenBLAS, BLIS, "FT-GEMM: Ori" (the
//! plain high-performance GEMM) and "FT-GEMM: FT" (with fused ABFT). The
//! harness adds the unfused-ABFT baseline for the overhead table.

use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtError, FtGemmContext};
use ftgemm_baselines::{ReferenceGemm, ReferenceParGemm, Tier};
use ftgemm_core::{gemm, GemmContext, MatMut, MatRef};
use ftgemm_faults::FaultInjector;
use ftgemm_parallel::{par_ft_gemm, par_gemm, ParGemmContext};

/// Which implementation a runner wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunnerKind {
    /// BLIS stand-in.
    Blis,
    /// OpenBLAS stand-in.
    OpenBlas,
    /// MKL stand-in.
    Mkl,
    /// FT-GEMM without fault tolerance ("Ori").
    Ori,
    /// FT-GEMM with fused ABFT ("FT").
    Ft,
    /// Traditional unfused ABFT (overhead baseline).
    FtUnfused,
}

impl RunnerKind {
    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            RunnerKind::Blis => "BLIS*",
            RunnerKind::OpenBlas => "OpenBLAS*",
            RunnerKind::Mkl => "MKL*",
            RunnerKind::Ori => "FT-GEMM: Ori",
            RunnerKind::Ft => "FT-GEMM: FT",
            RunnerKind::FtUnfused => "ABFT unfused",
        }
    }
}

/// A ready-to-time GEMM implementation (DGEMM, as in the paper).
pub enum GemmRunner {
    /// Serial library stand-in.
    RefSerial(RunnerKind, ReferenceGemm<f64>),
    /// Serial FT-GEMM: Ori.
    OriSerial(GemmContext<f64>),
    /// Serial FT-GEMM: FT (fused or unfused per config).
    FtSerial(RunnerKind, Box<FtGemmContext<f64>>, FtConfig),
    /// Parallel library stand-in.
    RefPar(RunnerKind, ReferenceParGemm<f64>),
    /// Parallel FT-GEMM: Ori.
    OriPar(ParGemmContext<f64>),
    /// Parallel FT-GEMM: FT.
    FtPar(RunnerKind, ParGemmContext<f64>, FtConfig),
}

impl GemmRunner {
    /// Display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            GemmRunner::RefSerial(k, _)
            | GemmRunner::FtSerial(k, _, _)
            | GemmRunner::RefPar(k, _)
            | GemmRunner::FtPar(k, _, _) => k.name(),
            GemmRunner::OriSerial(_) | GemmRunner::OriPar(_) => RunnerKind::Ori.name(),
        }
    }

    /// Executes `C = A*B + C` (alpha = beta = 1, the paper's benchmark op).
    pub fn run(&mut self, a: &MatRef<'_, f64>, b: &MatRef<'_, f64>, c: &mut MatMut<'_, f64>) {
        match self {
            GemmRunner::RefSerial(_, g) => g.run(1.0, a, b, 1.0, c).expect("gemm failed"),
            GemmRunner::OriSerial(ctx) => gemm(ctx, 1.0, a, b, 1.0, c).expect("gemm failed"),
            GemmRunner::FtSerial(_, ctx, cfg) => {
                match ft_gemm_with_ctx(ctx, cfg, 1.0, a, b, 1.0, c) {
                    Ok(_) => {}
                    // Colliding injected-error patterns are *flagged*, never
                    // silent; for throughput sweeps the run still counts
                    // (the injector stats record the unrecoverable event).
                    Err(FtError::Unrecoverable { .. }) => {}
                    Err(e) => panic!("ft gemm failed: {e}"),
                }
            }
            GemmRunner::RefPar(_, g) => g.run(1.0, a, b, 1.0, c).expect("gemm failed"),
            GemmRunner::OriPar(ctx) => par_gemm(ctx, 1.0, a, b, 1.0, c).expect("gemm failed"),
            GemmRunner::FtPar(_, ctx, cfg) => match par_ft_gemm(ctx, cfg, 1.0, a, b, 1.0, c) {
                Ok(_) => {}
                Err(FtError::Unrecoverable { .. }) => {}
                Err(e) => panic!("parallel ft gemm failed: {e}"),
            },
        }
    }
}

/// The five serial curves of Fig. 2(a)/(c). `injector` attaches error
/// injection to the FT runner only (the paper injects into its own kernels).
pub fn serial_suite(injector: Option<FaultInjector>) -> Vec<GemmRunner> {
    let ft_cfg = match injector {
        Some(inj) => FtConfig::with_injector(inj),
        None => FtConfig::default(),
    };
    vec![
        GemmRunner::RefSerial(RunnerKind::Mkl, ReferenceGemm::mkl()),
        GemmRunner::RefSerial(RunnerKind::OpenBlas, ReferenceGemm::openblas()),
        GemmRunner::RefSerial(RunnerKind::Blis, ReferenceGemm::blis()),
        GemmRunner::OriSerial(GemmContext::new()),
        GemmRunner::FtSerial(RunnerKind::Ft, Box::new(FtGemmContext::new()), ft_cfg),
    ]
}

/// The five parallel curves of Fig. 2(b)/(d).
pub fn parallel_suite(threads: usize, injector: Option<FaultInjector>) -> Vec<GemmRunner> {
    let ft_cfg = match injector {
        Some(inj) => FtConfig::with_injector(inj),
        None => FtConfig::default(),
    };
    vec![
        GemmRunner::RefPar(RunnerKind::Mkl, ReferenceParGemm::new(Tier::Mkl, threads)),
        GemmRunner::RefPar(
            RunnerKind::OpenBlas,
            ReferenceParGemm::new(Tier::OpenBlas, threads),
        ),
        GemmRunner::RefPar(RunnerKind::Blis, ReferenceParGemm::new(Tier::Blis, threads)),
        GemmRunner::OriPar(ParGemmContext::with_threads(threads)),
        GemmRunner::FtPar(
            RunnerKind::Ft,
            ParGemmContext::with_threads(threads),
            ft_cfg,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    #[test]
    fn serial_suite_all_correct() {
        let mut suite = serial_suite(None);
        assert_eq!(suite.len(), 5);
        let a = Matrix::<f64>::random(40, 30, 1);
        let b = Matrix::<f64>::random(30, 35, 2);
        for r in &mut suite {
            let mut c = Matrix::<f64>::random(40, 35, 3);
            let mut c_ref = c.clone();
            r.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "{}", r.name());
        }
    }

    #[test]
    fn parallel_suite_all_correct() {
        let mut suite = parallel_suite(2, None);
        let a = Matrix::<f64>::random(64, 48, 4);
        let b = Matrix::<f64>::random(48, 52, 5);
        for r in &mut suite {
            let mut c = Matrix::<f64>::random(64, 52, 6);
            let mut c_ref = c.clone();
            r.run(&a.as_ref(), &b.as_ref(), &mut c.as_mut());
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "{}", r.name());
        }
    }

    #[test]
    fn names_match_paper_legend() {
        let suite = serial_suite(None);
        let names: Vec<_> = suite.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec!["MKL*", "OpenBLAS*", "BLIS*", "FT-GEMM: Ori", "FT-GEMM: FT"]
        );
    }
}
