//! Console tables and CSV output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple fixed-width console table (paper-style rows).
#[derive(Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line_len: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        println!("\n{}", self.title);
        println!("{}", "=".repeat(line_len.min(120)));
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!(" {c:>w$} |", w = w));
            }
            s
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", "-".repeat(line_len.min(120)));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as CSV under `dir/name.csv`; returns the path.
    pub fn write_csv(&self, dir: &str, name: &str) -> std::io::Result<PathBuf> {
        let mut w = CsvWriter::create(dir, name)?;
        w.row(&self.headers.iter().map(|s| s.as_str()).collect::<Vec<_>>())?;
        for row in &self.rows {
            w.row(&row.iter().map(|s| s.as_str()).collect::<Vec<_>>())?;
        }
        Ok(w.path)
    }
}

/// Incremental CSV writer.
#[derive(Debug)]
pub struct CsvWriter {
    file: fs::File,
    /// Full path of the file being written.
    pub path: PathBuf,
}

impl CsvWriter {
    /// Creates `dir/name.csv` (and `dir` itself if needed).
    pub fn create(dir: &str, name: &str) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        let file = fs::File::create(&path)?;
        Ok(CsvWriter { file, path })
    }

    /// Writes one row, quoting cells containing commas.
    pub fn row(&mut self, cells: &[&str]) -> std::io::Result<()> {
        let line = cells
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        writeln!(self.file, "{line}")
    }
}

/// Formats a GFLOPS value for table cells.
pub fn fmt_gflops(v: f64) -> String {
    format!("{v:8.2}")
}

/// Formats a percentage for table cells.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+6.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_csv() {
        let mut t = Table::new("test", &["size", "gflops"]);
        t.row(vec!["1024".into(), "12.5".into()]);
        t.row(vec!["2048".into(), "13,5".into()]);
        let dir = std::env::temp_dir().join("ftgemm-bench-test");
        let p = t.write_csv(dir.to_str().unwrap(), "t1").expect("csv write");
        let s = std::fs::read_to_string(p).unwrap();
        assert!(s.starts_with("size,gflops\n"));
        assert!(s.contains("\"13,5\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_pct(1.234), " +1.23%");
        assert!(fmt_gflops(12.3456).contains("12.35"));
    }
}
