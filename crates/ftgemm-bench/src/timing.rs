//! Wall-clock measurement utilities.
//!
//! The paper repeats each measurement twenty times and reports the average
//! (§3); [`measure`] reproduces that protocol with a configurable repeat
//! count and explicit warm-up iterations (excluded from the statistics).

use std::time::Instant;

/// Statistics over repeated timed runs (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mean of the timed repetitions.
    pub avg: f64,
    /// Fastest repetition.
    pub min: f64,
    /// Slowest repetition.
    pub max: f64,
    /// Number of timed repetitions.
    pub reps: usize,
}

impl Measurement {
    /// GFLOPS for an `m x n x k` GEMM at the mean time.
    pub fn gflops(&self, m: usize, n: usize, k: usize) -> f64 {
        gflops(m, n, k, self.avg)
    }
}

/// Times `f` for `reps` repetitions after `warmup` unrecorded runs,
/// returning the raw per-repetition samples in seconds (for percentile
/// reporting; [`measure`] summarizes them).
pub fn measure_times(warmup: usize, reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup {
        f();
    }
    let mut times = Vec::with_capacity(reps.max(1));
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times
}

/// Times `f` for `reps` repetitions after `warmup` unrecorded runs.
pub fn measure(warmup: usize, reps: usize, f: impl FnMut()) -> Measurement {
    let times = measure_times(warmup, reps, f);
    let sum: f64 = times.iter().sum();
    Measurement {
        avg: sum / times.len() as f64,
        min: times.iter().copied().fold(f64::INFINITY, f64::min),
        max: times.iter().copied().fold(0.0, f64::max),
        reps: times.len(),
    }
}

/// GEMM GFLOPS: `2*m*n*k` floating-point operations over `secs` seconds.
pub fn gflops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    (2.0 * m as f64 * n as f64 * k as f64) / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_reps() {
        let mut calls = 0;
        let m = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(m.reps, 5);
        assert!(m.min <= m.avg && m.avg <= m.max);
    }

    #[test]
    fn gflops_math() {
        // 1000^3 GEMM in 2 seconds: 2e9 flop / 2 s = 1 GFLOPS.
        assert!((gflops(1000, 1000, 1000, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(gflops(10, 10, 10, 0.0), 0.0);
    }

    #[test]
    fn zero_reps_clamped() {
        let m = measure(0, 0, || {});
        assert_eq!(m.reps, 1);
    }
}
