//! Minimal CLI argument handling shared by the experiment binaries.

/// Common options for every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Use the paper's full-size sweeps instead of the scaled defaults.
    pub paper_sizes: bool,
    /// Explicit size list (overrides both defaults).
    pub sizes: Option<Vec<usize>>,
    /// Timed repetitions per point (paper: 20).
    pub reps: usize,
    /// Warm-up runs per point.
    pub warmup: usize,
    /// Thread count for parallel experiments (default: all cores).
    pub threads: usize,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Injected error count for the error-injection figures (paper: 20).
    pub errors: usize,
    /// Campaign duration in seconds for the reliability experiment.
    pub duration_secs: u64,
    /// CI smoke mode: tiny sizes, one repetition, no warm-up — just enough
    /// to prove the binary and its CSV/JSON emitters still work.
    pub smoke: bool,
    /// Forced synthetic topology for NUMA-sharded serving experiments,
    /// as `(nodes, cores_per_node)` from `--topology NxM` (e.g. `2x2`).
    /// `None` uses the detected machine topology.
    pub topology: Option<(usize, usize)>,
    /// Run the multi-tenant QoS scenario (`--tenants`): a mixed-priority
    /// tenant mix with deadlines, reported as the `qos` JSON section.
    pub tenants: bool,
    /// Run the loopback wire-transport comparison (`--net`): the same
    /// request stream through a `NetClient`/`NetServer` pair vs in-process
    /// submit, reported as the `transport_overhead` JSON section.
    pub net: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            paper_sizes: false,
            sizes: None,
            reps: 3,
            warmup: 1,
            threads: ftgemm_core::cpu::num_cpus(),
            out_dir: "bench_results".to_string(),
            errors: 20,
            duration_secs: 10,
            smoke: false,
            topology: None,
            tenants: false,
            net: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args`, exiting with usage on error.
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--paper-sizes" => args.paper_sizes = true,
                "--sizes" => {
                    let v = it.next().unwrap_or_else(|| usage("--sizes needs a value"));
                    args.sizes = Some(
                        v.split(',')
                            .map(|s| s.trim().parse().unwrap_or_else(|_| usage("bad size")))
                            .collect(),
                    );
                }
                "--smoke" => {
                    args.smoke = true;
                    args.reps = 1;
                    args.warmup = 0;
                }
                "--reps" => args.reps = next_num(&mut it, "--reps"),
                "--warmup" => args.warmup = next_num(&mut it, "--warmup"),
                "--threads" => args.threads = next_num(&mut it, "--threads"),
                "--errors" => args.errors = next_num(&mut it, "--errors"),
                "--duration" => args.duration_secs = next_num(&mut it, "--duration") as u64,
                "--out" => {
                    args.out_dir = it.next().unwrap_or_else(|| usage("--out needs a value"));
                }
                "--tenants" => args.tenants = true,
                "--net" => args.net = true,
                "--topology" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--topology needs a value like 2x2"));
                    args.topology = Some(parse_topology(&v));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Resolves the size list for a serial experiment.
    pub fn serial_sizes(&self) -> Vec<usize> {
        self.sizes.clone().unwrap_or_else(|| {
            if self.paper_sizes {
                crate::paper_serial_sizes()
            } else {
                crate::scaled_serial_sizes()
            }
        })
    }

    /// Resolves the size list for a parallel experiment.
    pub fn parallel_sizes(&self) -> Vec<usize> {
        self.sizes.clone().unwrap_or_else(|| {
            if self.paper_sizes {
                crate::paper_parallel_sizes()
            } else {
                crate::scaled_parallel_sizes()
            }
        })
    }
}

fn next_num(it: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a numeric value")))
}

/// Parses a forced-topology spec: `NxM` = N nodes of M cores each.
fn parse_topology(v: &str) -> (usize, usize) {
    let parse = |s: &str| s.trim().parse::<usize>().ok().filter(|&n| n >= 1);
    v.split_once(['x', 'X'])
        .and_then(|(n, m)| Some((parse(n)?, parse(m)?)))
        .unwrap_or_else(|| usage("--topology expects NxM with N,M >= 1 (e.g. 2x2)"))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "FT-GEMM experiment harness\n\
         \n\
         Flags:\n\
           --paper-sizes         full-size sweeps from the paper (hours!)\n\
           --sizes a,b,c         explicit size list\n\
           --reps N              timed repetitions per point (default 3; paper 20)\n\
           --warmup N            warm-up runs per point (default 1)\n\
           --threads N           threads for parallel experiments (default: all)\n\
           --errors N            injected errors for fig2c/fig2d (default 20)\n\
           --duration SECS       reliability campaign duration (default 10)\n\
           --smoke               CI smoke mode: tiny sizes, 1 rep, no warm-up\n\
           --topology NxM        force a synthetic N-node, M-cores-per-node topology\n\
           --tenants             run the multi-tenant QoS scenario (qos JSON section)\n\
           --net                 run the loopback wire-transport comparison (transport_overhead JSON section)\n\
           --out DIR             CSV output directory (default bench_results)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let a = Args::default();
        assert!(!a.paper_sizes);
        assert!(!a.smoke);
        assert!(!a.tenants);
        assert!(!a.net);
        assert!(a.reps >= 1);
        assert!(a.threads >= 1);
    }

    #[test]
    fn topology_spec_parses() {
        assert_eq!(parse_topology("2x2"), (2, 2));
        assert_eq!(parse_topology("4X1"), (4, 1));
        assert_eq!(parse_topology(" 8 x 3 "), (8, 3));
    }

    #[test]
    fn size_resolution() {
        let mut a = Args::default();
        assert_eq!(a.serial_sizes(), crate::scaled_serial_sizes());
        a.paper_sizes = true;
        assert_eq!(a.serial_sizes(), crate::paper_serial_sizes());
        a.sizes = Some(vec![64, 128]);
        assert_eq!(a.serial_sizes(), vec![64, 128]);
        assert_eq!(a.parallel_sizes(), vec![64, 128]);
    }
}
