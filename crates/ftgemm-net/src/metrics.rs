//! `ftgemm_net_*` metric families, registered in the global
//! [`Registry`](ftgemm_obs::Registry) so every `/metrics` scrape
//! ([`ObsServer`](ftgemm_obs::ObsServer)) exports them alongside the
//! service families from `ftgemm-serve`.
//!
//! | family | type | meaning |
//! |---|---|---|
//! | `ftgemm_net_connections` | gauge | currently open client connections |
//! | `ftgemm_net_connections_total` | counter | connections accepted since start |
//! | `ftgemm_net_frames_in_total` | counter | well-formed frames received |
//! | `ftgemm_net_frames_out_total` | counter | frames sent |
//! | `ftgemm_net_bytes_in_total` | counter | wire bytes received (incl. discarded oversize frames) |
//! | `ftgemm_net_bytes_out_total` | counter | wire bytes sent |
//! | `ftgemm_net_protocol_errors_total` | counter | error frames sent for protocol-level failures (malformed, oversize, unknown verb/handle, bad version, ...) |
//! | `ftgemm_net_resident_operand_bytes` | gauge | bytes held by server-resident operands |
//! | `ftgemm_net_operand_handles` | gauge | live operand handles |
//! | `ftgemm_net_operand_evictions_total` | counter | operands evicted by the byte budget |
//! | `ftgemm_scrub_passes_total` | counter | scrub passes run over the operand store |
//! | `ftgemm_scrub_operands_verified_total` | counter | resident operands whose checksums re-verified clean |
//! | `ftgemm_scrub_corrupted_total` | counter | resident operands whose checksums mismatched |
//! | `ftgemm_scrub_quarantined` | gauge | handles currently quarantined by the scrubber |
//!
//! The global registry is process-wide (shared across every server in the
//! process and across tests), so tests that need exact numbers assert
//! against the per-store accessors on
//! [`OperandStore`](crate::OperandStore) instead; these families are for
//! scraping.

use ftgemm_obs::{global_counter, global_gauge, Counter, Gauge};

/// Registers every family (at its current value) so a scrape sees the
/// full table from server start, not just the families that have already
/// fired. Called by `NetServer::start`.
pub(crate) fn register_all() {
    connections();
    connections_total();
    frames_in_total();
    frames_out_total();
    bytes_in_total();
    bytes_out_total();
    protocol_errors_total();
    resident_operand_bytes();
    operand_handles();
    operand_evictions_total();
    scrub_passes_total();
    scrub_operands_verified_total();
    scrub_corrupted_total();
    scrub_quarantined();
}

pub(crate) fn connections() -> &'static Gauge {
    global_gauge!(
        "ftgemm_net_connections",
        "Currently open wire-frontend client connections."
    )
}

pub(crate) fn connections_total() -> &'static Counter {
    global_counter!(
        "ftgemm_net_connections_total",
        "Wire-frontend connections accepted since process start."
    )
}

pub(crate) fn frames_in_total() -> &'static Counter {
    global_counter!(
        "ftgemm_net_frames_in_total",
        "Well-formed wire frames received."
    )
}

pub(crate) fn frames_out_total() -> &'static Counter {
    global_counter!("ftgemm_net_frames_out_total", "Wire frames sent.")
}

pub(crate) fn bytes_in_total() -> &'static Counter {
    global_counter!(
        "ftgemm_net_bytes_in_total",
        "Wire bytes received, including discarded oversized frames."
    )
}

pub(crate) fn bytes_out_total() -> &'static Counter {
    global_counter!("ftgemm_net_bytes_out_total", "Wire bytes sent.")
}

pub(crate) fn protocol_errors_total() -> &'static Counter {
    global_counter!(
        "ftgemm_net_protocol_errors_total",
        "Error frames sent for protocol-level failures (malformed frame, oversize frame, unknown verb/handle/request, unsupported version, in-flight cap)."
    )
}

pub(crate) fn resident_operand_bytes() -> &'static Gauge {
    global_gauge!(
        "ftgemm_net_resident_operand_bytes",
        "Bytes held by server-resident operands in the operand store."
    )
}

pub(crate) fn operand_handles() -> &'static Gauge {
    global_gauge!(
        "ftgemm_net_operand_handles",
        "Live operand handles in the operand store."
    )
}

pub(crate) fn operand_evictions_total() -> &'static Counter {
    global_counter!(
        "ftgemm_net_operand_evictions_total",
        "Server-resident operands evicted by the store's byte budget."
    )
}

pub(crate) fn scrub_passes_total() -> &'static Counter {
    global_counter!(
        "ftgemm_scrub_passes_total",
        "Background scrub passes run over the operand store."
    )
}

pub(crate) fn scrub_operands_verified_total() -> &'static Counter {
    global_counter!(
        "ftgemm_scrub_operands_verified_total",
        "Resident operands whose insert-time checksums re-verified clean."
    )
}

pub(crate) fn scrub_corrupted_total() -> &'static Counter {
    global_counter!(
        "ftgemm_scrub_corrupted_total",
        "Resident operands the scrubber found mismatching their insert-time checksums."
    )
}

pub(crate) fn scrub_quarantined() -> &'static Gauge {
    global_gauge!(
        "ftgemm_scrub_quarantined",
        "Operand handles currently quarantined by the scrubber (poisoned until released)."
    )
}
