//! `NetServer`: TCP accept loop binding the wire protocol to a
//! [`GemmService`].
//!
//! Same lifecycle idiom as `ftgemm-obs`'s `ObsServer`: the listener binds
//! eagerly in [`NetServer::start`] (so the caller gets the bound address
//! and any bind error synchronously), a background thread accepts
//! connections, and shutdown sets a stop flag then self-connects to wake
//! the blocked `accept()`. Each accepted connection runs on its own
//! thread (see the `conn` module); on shutdown the server half-closes every
//! live connection's socket and joins its thread, which releases that
//! connection's operand handles.

// analyze::policy(publish: stop as net_stop)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): `stop`
// is the shutdown publication cell, shared with connection threads as
// `ConnContext::server_stop`. Release store on shutdown, Acquire loads in
// the accept loop and connection pumps — a thread that observes the flag
// also observes everything the stopping thread wrote before raising it.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use std::thread::{self, JoinHandle};

use ftgemm_serve::GemmService;

use crate::conn::{handle_conn, ConnContext};
use crate::proto::DEFAULT_MAX_FRAME;
use crate::store::OperandStore;

/// Live connections: the accept-side socket clone (for shutdown wakeup)
/// plus the connection thread to join.
type ConnTable = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Tunables for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Largest accepted frame (length prefix); larger frames are drained
    /// and answered with a `FRAME_TOO_LARGE` error frame.
    pub max_frame: u32,
    /// Per-connection cap on unfinished submits; submits past it are
    /// answered with a `TOO_MANY_IN_FLIGHT` error frame.
    pub max_in_flight: usize,
    /// Byte budget of the server-resident operand store (LRU eviction
    /// past it).
    pub operand_budget: u64,
    /// How often the background scrubber re-verifies resident operands'
    /// checksums ([`OperandStore::scrub`]). `None` (the default) disables
    /// the scrub thread entirely.
    pub scrub_interval: Option<Duration>,
    /// Operands each scrub pass re-verifies at most (the pass resumes
    /// from a rotating cursor, so bounded passes still cover the whole
    /// store over time).
    pub scrub_batch: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            max_in_flight: 64,
            operand_budget: 256 * 1024 * 1024,
            scrub_interval: None,
            scrub_batch: 32,
        }
    }
}

/// Handle to a running wire frontend. Stops (and joins every connection)
/// on [`stop`](NetServer::stop) or drop.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    store: Arc<OperandStore>,
    accept: Option<JoinHandle<()>>,
    scrub: Option<JoinHandle<()>>,
    conns: ConnTable,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) and
    /// starts the accept loop against `service`. Binding happens in the
    /// caller's thread, so the returned server's [`addr`](Self::addr) is
    /// immediately connectable.
    pub fn start(
        service: Arc<GemmService<f64>>,
        addr: impl ToSocketAddrs,
        config: NetServerConfig,
    ) -> io::Result<NetServer> {
        crate::metrics::register_all();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::new(OperandStore::new(config.operand_budget));
        let conns: ConnTable = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let stop = Arc::clone(&stop);
            let store = Arc::clone(&store);
            let conns = Arc::clone(&conns);
            thread::spawn(move || {
                for incoming in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match incoming {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    // Acks and pushed completions are latency-sensitive;
                    // don't let Nagle hold them behind unacked segments.
                    let _ = stream.set_nodelay(true);
                    let peer = match stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let ctx = ConnContext {
                        service: Arc::clone(&service),
                        store: Arc::clone(&store),
                        max_frame: config.max_frame,
                        max_in_flight: config.max_in_flight,
                        server_stop: Arc::clone(&stop),
                        server_addr: local,
                    };
                    let handle = thread::spawn(move || handle_conn(stream, ctx));
                    conns.lock().push((peer, handle));
                }
            })
        };

        let scrub = config.scrub_interval.map(|interval| {
            let stop = Arc::clone(&stop);
            let store = Arc::clone(&store);
            let batch = config.scrub_batch;
            thread::spawn(move || {
                // Sleep in short chunks so shutdown never waits out a long
                // scrub interval.
                const CHUNK: Duration = Duration::from_millis(10);
                let mut since_scrub = Duration::ZERO;
                loop {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    thread::sleep(CHUNK.min(interval));
                    since_scrub += CHUNK.min(interval);
                    if since_scrub >= interval {
                        since_scrub = Duration::ZERO;
                        store.scrub(batch);
                    }
                }
            })
        });

        Ok(NetServer {
            addr: local,
            stop,
            store,
            accept: Some(accept),
            scrub,
            conns,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server-resident operand store (shared by all connections).
    /// Exposed for budget/leak assertions in tests and benches.
    pub fn store(&self) -> &Arc<OperandStore> {
        &self.store
    }

    /// Stops the accept loop, closes every live connection, and joins all
    /// threads. Idempotent via the stop flag; also runs on drop.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop if it is parked in accept().
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scrub.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock());
        for (stream, handle) in conns {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
