//! Frame encoding/decoding and blocking frame I/O.
//!
//! Decoding is total: any byte sequence produces either a [`Frame`] or a
//! typed [`WireError`], never a panic. [`read_frame`] additionally keeps
//! the *stream* total — an oversized length prefix is drained in chunks
//! (so framing stays in sync) and reported as [`ReadEvent::TooLarge`]
//! rather than torn down, and a malformed payload is surfaced as
//! [`ReadEvent::Malformed`] with the stream already positioned at the next
//! frame boundary.

use std::io::{self, Read, Write};

use crate::proto::{verb, CompletionFrame, CompletionOk, Frame, OperandRef, SubmitFrame};

/// Typed decode failure; mapped to [`error_code`](crate::proto::error_code)
/// values by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload ended before the field being read.
    Truncated,
    /// Bytes left over after the last field of the payload.
    Trailing(usize),
    /// Verb byte no frame type claims.
    UnknownVerb(u8),
    /// A field held a value outside its domain (bad enum discriminant,
    /// non-UTF-8 string, operand data length mismatch).
    BadValue(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::UnknownVerb(v) => write!(f, "unknown verb byte {v}"),
            WireError::BadValue(what) => write!(f, "bad value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadValue("non-UTF-8 string"))
    }

    /// `rows * cols` f64s; the element count is validated against the
    /// remaining payload *before* allocating, so a forged huge shape
    /// cannot trigger a large allocation.
    fn f64_mat(&mut self, rows: u32, cols: u32) -> Result<Vec<f64>, WireError> {
        let n = (rows as u64)
            .checked_mul(cols as u64)
            .ok_or(WireError::BadValue("operand shape overflows"))?;
        if n.checked_mul(8).ok_or(WireError::Truncated)? > self.remaining() as u64 {
            return Err(WireError::Truncated);
        }
        let n = n as usize;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

struct Wr {
    buf: Vec<u8>,
}

impl Wr {
    fn new() -> Self {
        Wr { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f64_slice(&mut self, data: &[f64]) {
        self.buf.reserve(data.len() * 8);
        for &v in data {
            self.f64(v);
        }
    }
}

// ---------------------------------------------------------------------------
// Frame payload codec
// ---------------------------------------------------------------------------

fn put_operand_ref(w: &mut Wr, op: &OperandRef) {
    match op {
        OperandRef::Inline { rows, cols, data } => {
            w.u8(0);
            w.u32(*rows);
            w.u32(*cols);
            w.f64_slice(data);
        }
        OperandRef::Handle(h) => {
            w.u8(1);
            w.u64(*h);
        }
    }
}

fn get_operand_ref(r: &mut Rd<'_>) -> Result<OperandRef, WireError> {
    match r.u8()? {
        0 => {
            let rows = r.u32()?;
            let cols = r.u32()?;
            let data = r.f64_mat(rows, cols)?;
            Ok(OperandRef::Inline { rows, cols, data })
        }
        1 => Ok(OperandRef::Handle(r.u64()?)),
        _ => Err(WireError::BadValue("operand-ref tag")),
    }
}

/// Encodes a frame into a complete wire message: `[len u32][verb][payload]`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = Wr::new();
    match frame {
        Frame::Hello { version, features } => {
            w.u16(*version);
            w.u32(*features);
        }
        Frame::ServerHello {
            version,
            features,
            max_frame,
        } => {
            w.u16(*version);
            w.u32(*features);
            w.u32(*max_frame);
        }
        Frame::UploadOperand { rows, cols, data } => {
            w.u32(*rows);
            w.u32(*cols);
            w.f64_slice(data);
        }
        Frame::OperandHandle {
            handle,
            resident_bytes,
        } => {
            w.u64(*handle);
            w.u64(*resident_bytes);
        }
        Frame::Submit(s) => {
            w.u8(s.hold as u8);
            w.u8(s.policy);
            w.u8(s.priority);
            w.u32(s.tenant);
            w.u64(s.deadline_ns);
            w.f64(s.alpha);
            w.f64(s.beta);
            put_operand_ref(&mut w, &s.a);
            put_operand_ref(&mut w, &s.b);
            match &s.c {
                None => w.u8(0),
                Some((rows, cols, data)) => {
                    w.u8(1);
                    w.u32(*rows);
                    w.u32(*cols);
                    w.f64_slice(data);
                }
            }
        }
        Frame::SubmitAck { id }
        | Frame::Poll { id }
        | Frame::Pending { id }
        | Frame::Wait { id } => {
            w.u64(*id);
        }
        Frame::Completion(c) => {
            w.u64(c.id);
            match &c.result {
                Ok(ok) => {
                    w.u8(0);
                    w.u32(ok.rows);
                    w.u32(ok.cols);
                    w.f64_slice(&ok.data);
                    w.u64(ok.verifications);
                    w.u64(ok.detected);
                    w.u64(ok.corrected);
                    w.u64(ok.injected);
                    w.u64(ok.retried_panels);
                }
                Err((code, message)) => {
                    w.u8(1);
                    w.u16(*code);
                    w.string(message);
                }
            }
        }
        Frame::ReleaseHandle { handle } | Frame::Released { handle } => {
            w.u64(*handle);
        }
        Frame::Shutdown | Frame::Goodbye => {}
        Frame::Error { id, code, message } => {
            w.u64(*id);
            w.u16(*code);
            w.string(message);
        }
    }
    let payload = w.buf;
    let mut out = Vec::with_capacity(5 + payload.len());
    out.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
    out.push(frame.verb());
    out.extend_from_slice(&payload);
    out
}

/// Decodes a frame payload given its verb byte. Total: every input maps to
/// a frame or a [`WireError`].
pub fn decode_frame(verb_byte: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = Rd::new(payload);
    let frame = match verb_byte {
        verb::HELLO => Frame::Hello {
            version: r.u16()?,
            features: r.u32()?,
        },
        verb::SERVER_HELLO => Frame::ServerHello {
            version: r.u16()?,
            features: r.u32()?,
            max_frame: r.u32()?,
        },
        verb::UPLOAD_OPERAND => {
            let rows = r.u32()?;
            let cols = r.u32()?;
            let data = r.f64_mat(rows, cols)?;
            Frame::UploadOperand { rows, cols, data }
        }
        verb::OPERAND_HANDLE => Frame::OperandHandle {
            handle: r.u64()?,
            resident_bytes: r.u64()?,
        },
        verb::SUBMIT => {
            let hold = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::BadValue("delivery mode")),
            };
            let policy = r.u8()?;
            if policy > 2 {
                return Err(WireError::BadValue("ft policy"));
            }
            let priority = r.u8()?;
            if priority > 2 {
                return Err(WireError::BadValue("priority"));
            }
            let tenant = r.u32()?;
            let deadline_ns = r.u64()?;
            let alpha = r.f64()?;
            let beta = r.f64()?;
            let a = get_operand_ref(&mut r)?;
            let b = get_operand_ref(&mut r)?;
            let c = match r.u8()? {
                0 => None,
                1 => {
                    let rows = r.u32()?;
                    let cols = r.u32()?;
                    let data = r.f64_mat(rows, cols)?;
                    Some((rows, cols, data))
                }
                _ => return Err(WireError::BadValue("output tag")),
            };
            Frame::Submit(SubmitFrame {
                hold,
                policy,
                priority,
                tenant,
                deadline_ns,
                alpha,
                beta,
                a,
                b,
                c,
            })
        }
        verb::SUBMIT_ACK => Frame::SubmitAck { id: r.u64()? },
        verb::POLL => Frame::Poll { id: r.u64()? },
        verb::PENDING => Frame::Pending { id: r.u64()? },
        verb::WAIT => Frame::Wait { id: r.u64()? },
        verb::COMPLETION => {
            let id = r.u64()?;
            let result = match r.u8()? {
                0 => {
                    let rows = r.u32()?;
                    let cols = r.u32()?;
                    let data = r.f64_mat(rows, cols)?;
                    Ok(CompletionOk {
                        rows,
                        cols,
                        data,
                        verifications: r.u64()?,
                        detected: r.u64()?,
                        corrected: r.u64()?,
                        injected: r.u64()?,
                        retried_panels: r.u64()?,
                    })
                }
                1 => Err((r.u16()?, r.string()?)),
                _ => return Err(WireError::BadValue("completion tag")),
            };
            Frame::Completion(CompletionFrame { id, result })
        }
        verb::RELEASE_HANDLE => Frame::ReleaseHandle { handle: r.u64()? },
        verb::RELEASED => Frame::Released { handle: r.u64()? },
        verb::SHUTDOWN => Frame::Shutdown,
        verb::GOODBYE => Frame::Goodbye,
        verb::ERROR => Frame::Error {
            id: r.u64()?,
            code: r.u16()?,
            message: r.string()?,
        },
        other => return Err(WireError::UnknownVerb(other)),
    };
    r.finish()?;
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Blocking frame I/O
// ---------------------------------------------------------------------------

/// Outcome of [`read_frame`]: the stream survives everything but I/O
/// failure, so protocol-level problems are events, not errors.
#[derive(Debug)]
pub enum ReadEvent {
    /// A well-formed frame.
    Frame(Frame),
    /// Length prefix exceeded the max frame size; the frame's bytes were
    /// drained and discarded, the stream is at the next frame boundary.
    TooLarge { len: u32 },
    /// Payload failed to decode; the stream is at the next frame boundary.
    Malformed(WireError),
    /// Clean end of stream (peer closed between frames).
    Eof,
}

/// Reads one length-prefixed frame. `max_frame` bounds the length prefix;
/// larger frames are drained in 64 KiB chunks and reported as
/// [`ReadEvent::TooLarge`] so a single oversized frame cannot desync or
/// kill the connection. Returns the total bytes consumed alongside the
/// event (for byte-level metrics).
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> io::Result<(ReadEvent, u64)> {
    let mut len_buf = [0u8; 4];
    // EOF before any length byte is a clean close; EOF mid-prefix is not.
    match r.read(&mut len_buf[..1])? {
        0 => return Ok((ReadEvent::Eof, 0)),
        _ => r.read_exact(&mut len_buf[1..])?,
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Ok((ReadEvent::Malformed(WireError::Truncated), 4));
    }
    if len > max_frame {
        let mut left = len as u64;
        let mut chunk = [0u8; 64 * 1024];
        while left > 0 {
            let take = left.min(chunk.len() as u64) as usize;
            r.read_exact(&mut chunk[..take])?;
            left -= take as u64;
        }
        return Ok((ReadEvent::TooLarge { len }, 4 + len as u64));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let event = match decode_frame(body[0], &body[1..]) {
        Ok(f) => ReadEvent::Frame(f),
        Err(e) => ReadEvent::Malformed(e),
    };
    Ok((event, 4 + len as u64))
}

/// Writes one frame; returns the bytes written.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<u64> {
    let bytes = encode_frame(frame);
    w.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_submit() {
        let f = Frame::Submit(SubmitFrame {
            hold: true,
            policy: 2,
            priority: 0,
            tenant: 7,
            deadline_ns: 123,
            alpha: 1.5,
            beta: -0.25,
            a: OperandRef::Handle(42),
            b: OperandRef::Inline {
                rows: 2,
                cols: 2,
                data: vec![1.0, 2.0, 3.0, 4.0],
            },
            c: Some((2, 2, vec![0.0; 4])),
        });
        let bytes = encode_frame(&f);
        let got = decode_frame(bytes[4], &bytes[5..]).unwrap();
        assert_eq!(got, f);
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode_frame(&Frame::SubmitAck { id: 9 });
        bytes.push(0xFF);
        // Patch the length prefix to claim the extra byte.
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) + 1;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            decode_frame(bytes[4], &bytes[5..]),
            Err(WireError::Trailing(1))
        );
    }

    #[test]
    fn oversized_frame_is_drained_not_fatal() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(&[0u8; 100]);
        wire.extend_from_slice(&encode_frame(&Frame::Goodbye));
        let mut cur = std::io::Cursor::new(wire);
        let (ev, n) = read_frame(&mut cur, 64).unwrap();
        assert!(matches!(ev, ReadEvent::TooLarge { len: 100 }));
        assert_eq!(n, 104);
        let (ev, _) = read_frame(&mut cur, 64).unwrap();
        assert!(matches!(ev, ReadEvent::Frame(Frame::Goodbye)));
    }

    #[test]
    fn forged_shape_cannot_force_huge_alloc() {
        // Claims a 2^31 x 2^31 operand with no data behind it.
        let mut w = Vec::new();
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        w.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(verb::UPLOAD_OPERAND, &w),
            Err(WireError::Truncated)
        );
    }
}
