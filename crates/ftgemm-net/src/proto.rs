//! Wire-protocol vocabulary: version, verbs, frame types, error codes.
//!
//! Every frame on the wire is
//!
//! ```text
//! +-------------+--------+--------------------+
//! | len: u32 LE | verb:u8|  payload (len - 1) |
//! +-------------+--------+--------------------+
//! ```
//!
//! where `len` counts the verb byte plus the payload. All integers are
//! little-endian; `f64` values travel as `to_bits()` so results round-trip
//! bit-identically. Strings are a `u32` byte length followed by UTF-8.
//! Matrices are `rows: u32, cols: u32` followed by `rows * cols` column-major
//! `f64`s (the in-memory layout of [`ftgemm_core::Matrix`], which is
//! contiguous with `ld == nrows`).
//!
//! The protocol is strictly client-initiates / server-responds, with one
//! exception: completions for stream-delivery submits are pushed by the
//! server whenever they finish, so a client may see [`Frame::Completion`]
//! frames interleaved with the response it is waiting for.

use ftgemm_abft::FtReport;
use ftgemm_core::Matrix;

/// Protocol version carried in [`Frame::Hello`] / [`Frame::ServerHello`].
/// A server answers an unsupported version with an
/// [`error_code::UNSUPPORTED_VERSION`] error frame and keeps the
/// connection open so the client can retry with a supported version.
pub const PROTO_VERSION: u16 = 1;

/// Feature bit: the server keeps uploaded operands resident and accepts
/// handle-based submits ([`Frame::UploadOperand`] / [`OperandRef::Handle`]).
pub const FEATURE_OPERAND_HANDLES: u32 = 1 << 0;

/// Feature bit: the server pushes stream-delivery completions without
/// polling ([`SubmitFrame::hold`] = false).
pub const FEATURE_STREAMING: u32 = 1 << 1;

/// All features this implementation speaks.
pub const FEATURES: u32 = FEATURE_OPERAND_HANDLES | FEATURE_STREAMING;

/// Default cap on a single frame (length prefix), server and client side.
pub const DEFAULT_MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Verb bytes. Pinned — never renumber; append only.
pub mod verb {
    pub const HELLO: u8 = 1;
    pub const SERVER_HELLO: u8 = 2;
    pub const UPLOAD_OPERAND: u8 = 3;
    pub const OPERAND_HANDLE: u8 = 4;
    pub const SUBMIT: u8 = 5;
    pub const SUBMIT_ACK: u8 = 6;
    pub const POLL: u8 = 7;
    pub const PENDING: u8 = 8;
    pub const WAIT: u8 = 9;
    pub const COMPLETION: u8 = 10;
    pub const RELEASE_HANDLE: u8 = 11;
    pub const RELEASED: u8 = 12;
    pub const SHUTDOWN: u8 = 13;
    pub const GOODBYE: u8 = 14;
    pub const ERROR: u8 = 15;
}

/// Wire error codes carried by [`Frame::Error`] and failed completions.
/// Pinned — never renumber; append only.
///
/// Codes 1..=99 are reserved for [`ftgemm_serve::ServeError::wire_code`]
/// (request-level failures); 100+ are protocol-level failures originated
/// by the transport itself.
pub mod error_code {
    /// `ServeError::Shape` — inconsistent operand shapes.
    pub const SHAPE: u16 = 1;
    /// `ServeError::Ft` — the fault-tolerant driver gave up.
    pub const FT: u16 = 2;
    /// `ServeError::Closed` — the service is shutting down.
    pub const CLOSED: u16 = 3;
    /// `ServeError::Overloaded` — submission queue at capacity.
    pub const OVERLOADED: u16 = 4;
    /// `ServeError::DeadlineExceeded` — infeasible or expired deadline.
    pub const DEADLINE_EXCEEDED: u16 = 5;

    /// Client Hello carried a version this server does not speak.
    pub const UNSUPPORTED_VERSION: u16 = 100;
    /// Frame payload failed to decode (truncated, trailing bytes, bad
    /// enum value, non-UTF-8 string, operand length mismatch).
    pub const MALFORMED_FRAME: u16 = 101;
    /// Frame length prefix exceeded the server's max frame size. The
    /// oversized frame is discarded in full so framing stays in sync and
    /// the connection survives.
    pub const FRAME_TOO_LARGE: u16 = 102;
    /// Submit/Release referenced a handle this connection does not own
    /// (never uploaded, already released, or evicted by the byte budget).
    pub const UNKNOWN_HANDLE: u16 = 103;
    /// Upload rejected: the operand alone exceeds the store's byte budget.
    pub const OPERAND_BUDGET: u16 = 104;
    /// Unknown verb byte (a frame from a future protocol revision).
    pub const UNKNOWN_VERB: u16 = 105;
    /// Submit rejected: connection already has `max_in_flight` requests.
    pub const TOO_MANY_IN_FLIGHT: u16 = 106;
    /// Poll/Wait for a request id this connection never submitted in hold
    /// delivery (or already redeemed).
    pub const UNKNOWN_REQUEST: u16 = 107;
    /// The first frame on the connection was not Hello.
    pub const EXPECTED_HELLO: u16 = 108;
    /// Submit referenced a handle the scrubber quarantined: the resident
    /// operand's bytes no longer matched its upload-time checksums, so the
    /// server refuses to compute on it. Release the handle and re-upload.
    pub const OPERAND_QUARANTINED: u16 = 109;
}

/// An input operand inside a [`SubmitFrame`]: inline matrix data, or a
/// server-resident handle from a previous [`Frame::UploadOperand`].
#[derive(Debug, Clone, PartialEq)]
pub enum OperandRef {
    /// Column-major matrix data shipped with the submit.
    Inline {
        rows: u32,
        cols: u32,
        data: Vec<f64>,
    },
    /// A handle minted by [`Frame::OperandHandle`]; resolves zero-copy to
    /// the server-resident `Arc<Matrix<f64>>`.
    Handle(u64),
}

impl OperandRef {
    /// Builds an inline operand from a matrix (copies the data once, at
    /// the client).
    pub fn inline(m: &Matrix<f64>) -> Self {
        OperandRef::Inline {
            rows: m.nrows() as u32,
            cols: m.ncols() as u32,
            data: m.as_slice().to_vec(),
        }
    }
}

/// Payload of [`Frame::Submit`] — the full `GemmRequest` surface on the
/// wire: operands (by handle or inline), scalars, FT policy, QoS fields,
/// and the delivery mode for the eventual completion.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitFrame {
    /// Delivery mode: `false` = stream (the server pushes the completion
    /// as soon as it finishes), `true` = hold (the server parks the
    /// completion for [`Frame::Poll`] / [`Frame::Wait`]).
    pub hold: bool,
    /// `FtPolicy` discriminant: 0 = Off, 1 = Detect, 2 = DetectCorrect.
    pub policy: u8,
    /// `Priority` discriminant: 0 = High, 1 = Normal, 2 = Low.
    pub priority: u8,
    /// Owning tenant for QoS scheduling.
    pub tenant: u32,
    /// Relative deadline in nanoseconds; 0 = none.
    pub deadline_ns: u64,
    /// Scale on `A*B` (f64 bits on the wire).
    pub alpha: f64,
    /// Scale on the input `C`.
    pub beta: f64,
    /// Left operand (`m x k`).
    pub a: OperandRef,
    /// Right operand (`k x n`).
    pub b: OperandRef,
    /// Optional input/output `C` (`m x n`, column-major); absent means a
    /// zeroed output.
    pub c: Option<(u32, u32, Vec<f64>)>,
}

/// Successful half of a [`CompletionFrame`]: the output matrix plus the
/// request's fault-tolerance counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionOk {
    pub rows: u32,
    pub cols: u32,
    /// Column-major output, bit-identical to the in-process result.
    pub data: Vec<f64>,
    pub verifications: u64,
    pub detected: u64,
    pub corrected: u64,
    pub injected: u64,
    pub retried_panels: u64,
}

impl CompletionOk {
    /// Reassembles the output matrix (panics only if rows/cols/data are
    /// inconsistent, which the codec rejects at decode time).
    pub fn to_matrix(&self) -> Matrix<f64> {
        Matrix::from_col_major(self.rows as usize, self.cols as usize, &self.data)
            .expect("codec-validated completion shape")
    }

    /// Reassembles the fault-tolerance report.
    pub fn report(&self) -> FtReport {
        FtReport {
            verifications: self.verifications as usize,
            detected: self.detected as usize,
            corrected: self.corrected as usize,
            injected: self.injected as usize,
            retried_panels: self.retried_panels as usize,
        }
    }
}

/// Payload of [`Frame::Completion`]: one finished request, successful or
/// failed (failed completions carry a wire error code and message — e.g. a
/// deadline that expired while queued).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionFrame {
    /// Service-assigned request id (from [`Frame::SubmitAck`]).
    pub id: u64,
    pub result: Result<CompletionOk, (u16, String)>,
}

/// Every frame the protocol speaks, both directions.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: version/feature negotiation; must be the first
    /// frame on a connection.
    Hello { version: u16, features: u32 },
    /// Server → client: negotiated version, the feature intersection, and
    /// the server's max frame size.
    ServerHello {
        version: u16,
        features: u32,
        max_frame: u32,
    },
    /// Client → server: make a matrix server-resident; answered with
    /// [`Frame::OperandHandle`].
    UploadOperand {
        rows: u32,
        cols: u32,
        data: Vec<f64>,
    },
    /// Server → client: the minted handle and the store's resident bytes
    /// after insertion (budget observability for the client).
    OperandHandle { handle: u64, resident_bytes: u64 },
    /// Client → server: submit one GEMM; answered with
    /// [`Frame::SubmitAck`] (or an error frame on rejection).
    Submit(SubmitFrame),
    /// Server → client: the request was admitted under this id.
    SubmitAck { id: u64 },
    /// Client → server: non-blocking check of a hold-delivery request.
    Poll { id: u64 },
    /// Server → client: the polled request has not finished yet.
    Pending { id: u64 },
    /// Client → server: block until the hold-delivery request finishes;
    /// answered with its [`Frame::Completion`].
    Wait { id: u64 },
    /// Server → client: one finished request (pushed for stream delivery,
    /// or the answer to Poll/Wait for hold delivery).
    Completion(CompletionFrame),
    /// Client → server: drop a server-resident operand handle.
    ReleaseHandle { handle: u64 },
    /// Server → client: the handle was released.
    Released { handle: u64 },
    /// Client → server: stop the whole server (accept loop and all);
    /// answered with [`Frame::Goodbye`].
    Shutdown,
    /// Server → client: shutdown acknowledged, connection closing.
    Goodbye,
    /// Server → client: a request- or protocol-level failure. `id` is the
    /// request id when the failure is tied to one, 0 otherwise.
    Error { id: u64, code: u16, message: String },
}

impl Frame {
    /// The frame's verb byte (see [`verb`]).
    pub fn verb(&self) -> u8 {
        match self {
            Frame::Hello { .. } => verb::HELLO,
            Frame::ServerHello { .. } => verb::SERVER_HELLO,
            Frame::UploadOperand { .. } => verb::UPLOAD_OPERAND,
            Frame::OperandHandle { .. } => verb::OPERAND_HANDLE,
            Frame::Submit(_) => verb::SUBMIT,
            Frame::SubmitAck { .. } => verb::SUBMIT_ACK,
            Frame::Poll { .. } => verb::POLL,
            Frame::Pending { .. } => verb::PENDING,
            Frame::Wait { .. } => verb::WAIT,
            Frame::Completion(_) => verb::COMPLETION,
            Frame::ReleaseHandle { .. } => verb::RELEASE_HANDLE,
            Frame::Released { .. } => verb::RELEASED,
            Frame::Shutdown => verb::SHUTDOWN,
            Frame::Goodbye => verb::GOODBYE,
            Frame::Error { .. } => verb::ERROR,
        }
    }
}
