//! `NetClient`: a blocking client for the wire protocol, used by the
//! tests, the example, and the `serve_throughput --net` bench.
//!
//! One TCP connection, synchronous transactions: each call sends a frame
//! and reads until its response arrives. Stream-delivery completions can
//! arrive at any point (the server pushes them as requests finish), so
//! the read loop stashes any [`Frame::Completion`] that is not the
//! response being awaited; [`NetClient::wait`] and
//! [`NetClient::next_completion`] consume the stash first.

use std::collections::{HashSet, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ftgemm_abft::FtPolicy;
use ftgemm_core::Matrix;
use ftgemm_serve::{Priority, TenantId, DEFAULT_TENANT};

use crate::codec::{read_frame, write_frame, ReadEvent};
use crate::proto::{
    CompletionFrame, Frame, OperandRef, SubmitFrame, DEFAULT_MAX_FRAME, FEATURES, PROTO_VERSION,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The server answered with an error frame.
    Server { id: u64, code: u16, message: String },
    /// The server violated the protocol (malformed frame, oversized
    /// frame, or a response of the wrong type).
    Protocol(String),
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server { id, code, message } => {
                write!(f, "server error {code} (request {id}): {message}")
            }
            ClientError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Builder for one wire submit; mirrors `GemmRequest`'s surface.
#[derive(Debug, Clone)]
pub struct NetSubmit {
    a: OperandRef,
    b: OperandRef,
    c: Option<(u32, u32, Vec<f64>)>,
    alpha: f64,
    beta: f64,
    policy: FtPolicy,
    priority: Priority,
    tenant: TenantId,
    deadline: Option<Duration>,
    hold: bool,
}

impl NetSubmit {
    /// `C = A*B` against two operands (inline matrices or uploaded
    /// handles), stream delivery, default policy/QoS.
    pub fn new(a: impl Into<OperandRef>, b: impl Into<OperandRef>) -> Self {
        NetSubmit {
            a: a.into(),
            b: b.into(),
            c: None,
            alpha: 1.0,
            beta: 0.0,
            policy: FtPolicy::default(),
            priority: Priority::default(),
            tenant: DEFAULT_TENANT,
            deadline: None,
            hold: false,
        }
    }

    /// Supplies the input/output `C` and its scale.
    #[must_use]
    pub fn with_c(mut self, beta: f64, c: &Matrix<f64>) -> Self {
        self.beta = beta;
        self.c = Some((c.nrows() as u32, c.ncols() as u32, c.as_slice().to_vec()));
        self
    }

    /// Sets `alpha`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the fault-tolerance policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FtPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Tags the owning tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a relative completion deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Hold delivery: the server parks the completion for
    /// [`NetClient::poll`] / [`NetClient::wait`] instead of pushing it.
    #[must_use]
    pub fn held(mut self) -> Self {
        self.hold = true;
        self
    }

    fn into_frame(self) -> SubmitFrame {
        SubmitFrame {
            hold: self.hold,
            policy: match self.policy {
                FtPolicy::Off => 0,
                FtPolicy::Detect => 1,
                FtPolicy::DetectCorrect => 2,
            },
            priority: match self.priority {
                Priority::High => 0,
                Priority::Normal => 1,
                Priority::Low => 2,
            },
            tenant: self.tenant,
            deadline_ns: self.deadline.map_or(0, |d| d.as_nanos() as u64),
            alpha: self.alpha,
            beta: self.beta,
            a: self.a,
            b: self.b,
            c: self.c,
        }
    }
}

impl From<&Matrix<f64>> for OperandRef {
    fn from(m: &Matrix<f64>) -> Self {
        OperandRef::inline(m)
    }
}

impl From<u64> for OperandRef {
    fn from(handle: u64) -> Self {
        OperandRef::Handle(handle)
    }
}

/// Blocking wire-protocol client. See the module docs.
pub struct NetClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: u32,
    features: u32,
    /// Stream-delivery completions that arrived while awaiting another
    /// response.
    stash: VecDeque<CompletionFrame>,
    /// Ids submitted with hold delivery (wait must ask, not drain).
    held: HashSet<u64>,
}

impl NetClient {
    /// Connects and performs the Hello / ServerHello handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Small request/ack frames must not sit in Nagle's buffer behind
        // an unacked segment — every submit is a round trip.
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let mut client = NetClient {
            reader: BufReader::new(stream),
            writer,
            max_frame: DEFAULT_MAX_FRAME,
            features: 0,
            stash: VecDeque::new(),
            held: HashSet::new(),
        };
        client.send(&Frame::Hello {
            version: PROTO_VERSION,
            features: FEATURES,
        })?;
        match client.read_response()? {
            Frame::ServerHello { features, .. } => {
                client.features = features;
                Ok(client)
            }
            other => Err(unexpected("ServerHello", &other)),
        }
    }

    /// The feature set negotiated at connect time.
    pub fn features(&self) -> u32 {
        self.features
    }

    /// Uploads a matrix; returns its server-resident handle.
    pub fn upload(&mut self, m: &Matrix<f64>) -> Result<u64, ClientError> {
        self.send(&Frame::UploadOperand {
            rows: m.nrows() as u32,
            cols: m.ncols() as u32,
            data: m.as_slice().to_vec(),
        })?;
        match self.read_transaction()? {
            Frame::OperandHandle { handle, .. } => Ok(handle),
            other => Err(unexpected("OperandHandle", &other)),
        }
    }

    /// Submits one GEMM; returns the server-assigned request id.
    pub fn submit(&mut self, submit: NetSubmit) -> Result<u64, ClientError> {
        let hold = submit.hold;
        self.send(&Frame::Submit(submit.into_frame()))?;
        match self.read_transaction()? {
            Frame::SubmitAck { id } => {
                if hold {
                    self.held.insert(id);
                }
                Ok(id)
            }
            other => Err(unexpected("SubmitAck", &other)),
        }
    }

    /// Blocks until request `id` finishes. Hold-delivery ids are waited
    /// server-side; stream-delivery ids are drained off the connection
    /// (completions for other requests are stashed).
    pub fn wait(&mut self, id: u64) -> Result<CompletionFrame, ClientError> {
        if let Some(pos) = self.stash.iter().position(|c| c.id == id) {
            return Ok(self.stash.remove(pos).unwrap());
        }
        if self.held.remove(&id) {
            self.send(&Frame::Wait { id })?;
        }
        loop {
            match self.read_response()? {
                Frame::Completion(c) if c.id == id => return Ok(c),
                Frame::Completion(c) => self.stash.push_back(c),
                other => return Err(unexpected("Completion", &other)),
            }
        }
    }

    /// Non-blocking check of a hold-delivery request.
    pub fn poll(&mut self, id: u64) -> Result<Option<CompletionFrame>, ClientError> {
        self.send(&Frame::Poll { id })?;
        loop {
            match self.read_response()? {
                Frame::Pending { id: got } if got == id => return Ok(None),
                Frame::Completion(c) if c.id == id => {
                    self.held.remove(&id);
                    return Ok(Some(c));
                }
                Frame::Completion(c) => self.stash.push_back(c),
                other => return Err(unexpected("Pending/Completion", &other)),
            }
        }
    }

    /// The next stream-delivery completion, in arrival order.
    pub fn next_completion(&mut self) -> Result<CompletionFrame, ClientError> {
        if let Some(c) = self.stash.pop_front() {
            return Ok(c);
        }
        match self.read_response()? {
            Frame::Completion(c) => Ok(c),
            other => Err(unexpected("Completion", &other)),
        }
    }

    /// Releases a server-resident operand handle.
    pub fn release(&mut self, handle: u64) -> Result<(), ClientError> {
        self.send(&Frame::ReleaseHandle { handle })?;
        match self.read_transaction()? {
            Frame::Released { handle: got } if got == handle => Ok(()),
            other => Err(unexpected("Released", &other)),
        }
    }

    /// Asks the server to shut down (accept loop and all connections);
    /// consumes the client.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.read_response()? {
                Frame::Goodbye => return Ok(()),
                Frame::Completion(_) => continue,
                other => return Err(unexpected("Goodbye", &other)),
            }
        }
    }

    /// Sends a raw frame without awaiting a response. Public for protocol
    /// robustness tests; pair with [`read_response`](Self::read_response).
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Sends pre-encoded bytes verbatim (for malformed-frame tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next transactional response, stashing stream-delivery
    /// completions that the server pushed while this request was on the
    /// wire (pipelined submits see their predecessors' completions
    /// interleave with the ack they are awaiting).
    fn read_transaction(&mut self) -> Result<Frame, ClientError> {
        loop {
            match self.read_response()? {
                Frame::Completion(c) => self.stash.push_back(c),
                other => return Ok(other),
            }
        }
    }

    /// Reads the next frame, turning server error frames into
    /// [`ClientError::Server`]. Public counterpart of [`send`](Self::send).
    pub fn read_response(&mut self) -> Result<Frame, ClientError> {
        let (event, _) = read_frame(&mut self.reader, self.max_frame)?;
        match event {
            ReadEvent::Frame(Frame::Error { id, code, message }) => {
                Err(ClientError::Server { id, code, message })
            }
            ReadEvent::Frame(f) => Ok(f),
            ReadEvent::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            ReadEvent::TooLarge { len } => Err(ClientError::Protocol(format!(
                "server sent oversized frame of {len} bytes"
            ))),
            ReadEvent::Malformed(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }
}

fn unexpected(wanted: &str, got: &Frame) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got verb {}", got.verb()))
}
