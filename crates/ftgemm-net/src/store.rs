//! Server-resident operand store: ref-counted matrices behind `u64`
//! handles, with a byte budget enforced by LRU eviction and an idle-cycle
//! integrity scrubber.
//!
//! This is the server half of the clients-cache-operands-and-re-fire
//! pattern: a client uploads `A`/`B` once, then fires any number of
//! submits against the handles. [`OperandStore::get`] hands back an
//! `Arc<Matrix<f64>>` clone, which flows into
//! [`Operand::Shared`](ftgemm_serve::Operand) — zero matrix bytes are
//! copied per submit.
//!
//! Handles are minted from one store-wide counter, so a handle is never
//! reused and a stale handle (released or evicted) misses cleanly. The
//! store is shared by all connections of a server; each connection tracks
//! the handles it owns and releases them on disconnect, so a killed client
//! cannot leak resident bytes.
//!
//! ## Scrubbing
//!
//! A resident operand can bit-rot *after* upload, and because submits
//! reuse its handle, one corrupted cached matrix would poison every
//! subsequent request — the per-request ABFT verification catches errors
//! in the *computation*, not errors already baked into its inputs. So the
//! store remembers each operand's row and column checksums from insert
//! time and [`OperandStore::scrub`] re-verifies them (bit-exact — the
//! sums are recomputed in the same deterministic order). A mismatching
//! entry is **quarantined**: evicted immediately, and later `get`s of its
//! handle fail with [`StoreGetError::Quarantined`] (surfaced on the wire
//! as `OPERAND_QUARANTINED`) rather than a plain miss, so the client
//! knows to re-upload rather than suspect its own bookkeeping. Scrub
//! passes walk the handle space in ascending order from a rotating
//! cursor, bounded per pass, so a background scrubber visits every
//! resident operand without ever holding the store lock across checksum
//! work. The known blind spot is a corruption that exactly preserves both
//! sum vectors bit-for-bit — compensating multi-element corruptions —
//! which is the same algebraic blind spot row+column ABFT itself has.

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): the
// byte/handle gauges, scrub tallies, and scrub cursor are advisory
// accounting read by metrics and the admission check; the authoritative
// state lives under `inner`'s lock.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ftgemm_core::Matrix;

use crate::metrics;

/// Upload rejection: the operand alone exceeds the store's byte budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the rejected operand would occupy.
    pub bytes: u64,
    /// The store's configured budget.
    pub budget: u64,
}

/// Why [`OperandStore::try_get`] failed to resolve a handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreGetError {
    /// Never minted, released, or evicted by the byte budget.
    Unknown,
    /// Quarantined by the scrubber: the operand's resident bytes no
    /// longer matched its insert-time checksums. The client must
    /// re-upload; the handle stays poisoned until released.
    Quarantined,
}

/// What one [`OperandStore::scrub`] pass found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Operands whose checksums re-verified clean.
    pub verified: u64,
    /// Operands whose resident bytes mismatched their insert-time
    /// checksums (each is also quarantined, unless it was released in the
    /// window between verification and quarantine).
    pub corrupted: u64,
    /// Corrupted operands actually evicted and marked this pass.
    pub quarantined: u64,
}

struct Entry {
    m: Arc<Matrix<f64>>,
    bytes: u64,
    /// Monotonic use tick; smallest = least recently used.
    last_used: u64,
    /// Insert-time per-row sums, in fixed recompute order (scrub compares
    /// bit-for-bit).
    row_sums: Vec<f64>,
    /// Insert-time per-column sums.
    col_sums: Vec<f64>,
}

/// Authoritative store state behind the lock.
struct StoreMap {
    entries: HashMap<u64, Entry>,
    /// Handles the scrubber evicted for checksum mismatch; `get`s fail
    /// typed until the owner releases them.
    quarantined: HashSet<u64>,
}

/// Ref-counted server-resident operand matrices with byte-budget LRU
/// eviction and checksum scrubbing. See the module docs for semantics.
pub struct OperandStore {
    inner: Mutex<StoreMap>,
    budget: u64,
    next_handle: AtomicU64,
    tick: AtomicU64,
    // Authoritative copies of the store gauges: the global metric families
    // are process-wide and shared across tests, so deterministic
    // assertions read these instead.
    resident: AtomicU64,
    handles: AtomicU64,
    evictions: AtomicU64,
    /// Last handle a scrub pass visited; the next pass resumes above it
    /// (wrapping), so bounded passes cover the whole store over time.
    scrub_cursor: AtomicU64,
    scrub_passes: AtomicU64,
    scrub_verified: AtomicU64,
    scrub_corrupted: AtomicU64,
}

/// Row and column sums of `m` in a fixed deterministic order — recomputed
/// identically at scrub time, so clean data compares bit-for-bit.
fn checksums(m: &Matrix<f64>) -> (Vec<f64>, Vec<f64>) {
    let row_sums: Vec<f64> = (0..m.nrows())
        .map(|i| (0..m.ncols()).map(|j| m.get(i, j)).sum())
        .collect();
    let col_sums: Vec<f64> = (0..m.ncols())
        .map(|j| (0..m.nrows()).map(|i| m.get(i, j)).sum())
        .collect();
    (row_sums, col_sums)
}

/// Bit-exact vector comparison (NaN-safe, unlike `==`).
fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl OperandStore {
    /// A store that evicts past `budget_bytes` of resident operand data.
    pub fn new(budget_bytes: u64) -> Self {
        OperandStore {
            inner: Mutex::new(StoreMap {
                entries: HashMap::new(),
                quarantined: HashSet::new(),
            }),
            budget: budget_bytes,
            next_handle: AtomicU64::new(1),
            tick: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            handles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            scrub_cursor: AtomicU64::new(0),
            scrub_passes: AtomicU64::new(0),
            scrub_verified: AtomicU64::new(0),
            scrub_corrupted: AtomicU64::new(0),
        }
    }

    /// Inserts a matrix, evicting least-recently-used entries if the
    /// budget requires it (never the matrix being inserted). Returns the
    /// minted handle and the resident bytes after insertion.
    pub fn insert(&self, m: Matrix<f64>) -> Result<(u64, u64), BudgetExceeded> {
        let bytes = std::mem::size_of_val(m.as_slice()) as u64;
        if bytes > self.budget {
            return Err(BudgetExceeded {
                bytes,
                budget: self.budget,
            });
        }
        // Checksums are computed outside the lock: uploads of large
        // operands must not stall every concurrent submit's handle lookup.
        let (row_sums, col_sums) = checksums(&m);
        let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock();
        // Evict until the newcomer fits.
        while self.resident.load(Ordering::Relaxed) + bytes > self.budget {
            // Resident bytes over budget implies a resident entry; if the
            // gauge ever drifts from the map, stop evicting rather than
            // panic the connection thread mid-upload.
            let Some(victim) = map
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(h, _)| *h)
            else {
                break;
            };
            let Some(gone) = map.entries.remove(&victim) else {
                break;
            };
            self.account_removal(gone.bytes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            metrics::operand_evictions_total().inc();
        }
        map.entries.insert(
            handle,
            Entry {
                m: Arc::new(m),
                bytes,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
                row_sums,
                col_sums,
            },
        );
        let resident = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.handles.fetch_add(1, Ordering::Relaxed);
        metrics::resident_operand_bytes().add(bytes as f64);
        metrics::operand_handles().add(1.0);
        Ok((handle, resident))
    }

    /// Resolves a handle to its shared matrix (bumping its LRU position),
    /// with a typed miss: a handle the scrubber quarantined fails
    /// [`StoreGetError::Quarantined`], anything else absent fails
    /// [`StoreGetError::Unknown`].
    pub fn try_get(&self, handle: u64) -> Result<Arc<Matrix<f64>>, StoreGetError> {
        let mut map = self.inner.lock();
        if map.quarantined.contains(&handle) {
            return Err(StoreGetError::Quarantined);
        }
        match map.entries.get_mut(&handle) {
            Some(e) => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(&e.m))
            }
            None => Err(StoreGetError::Unknown),
        }
    }

    /// Resolves a handle to its shared matrix (bumping its LRU position),
    /// or `None` if the handle was never minted, released, evicted, or
    /// quarantined. Use [`try_get`](Self::try_get) to tell a quarantine
    /// apart from a plain miss.
    pub fn get(&self, handle: u64) -> Option<Arc<Matrix<f64>>> {
        self.try_get(handle).ok()
    }

    /// Drops a handle; returns whether it was resident. In-flight requests
    /// holding the `Arc` keep the data alive until they finish — release
    /// only un-counts it from the store. Releasing a quarantined handle
    /// clears its quarantine marker (and returns `false`: the bytes were
    /// already evicted at quarantine time).
    pub fn release(&self, handle: u64) -> bool {
        let mut map = self.inner.lock();
        if map.quarantined.remove(&handle) {
            metrics::scrub_quarantined().add(-1.0);
            return false;
        }
        match map.entries.remove(&handle) {
            Some(e) => {
                self.account_removal(e.bytes);
                true
            }
            None => false,
        }
    }

    /// One bounded scrub pass: re-verifies the insert-time checksums of up
    /// to `max_entries` resident operands (ascending handle order from the
    /// rotating cursor, wrapping), quarantining every mismatch. Checksum
    /// recomputation runs **outside** the store lock — concurrent submits
    /// keep resolving handles while a pass works through its snapshot.
    ///
    /// Intended for idle cycles
    /// ([`NetServerConfig::scrub_interval`](crate::NetServerConfig)), but
    /// safe to call from anywhere, concurrently with everything.
    pub fn scrub(&self, max_entries: usize) -> ScrubReport {
        struct ScrubItem {
            handle: u64,
            m: Arc<Matrix<f64>>,
            row_sums: Vec<f64>,
            col_sums: Vec<f64>,
        }
        let cursor = self.scrub_cursor.load(Ordering::Relaxed);
        // Snapshot the slice of the handle space this pass covers.
        let snapshot: Vec<ScrubItem> = {
            let map = self.inner.lock();
            let mut handles: Vec<u64> = map.entries.keys().copied().collect();
            handles.sort_unstable();
            let split = handles.partition_point(|&h| h <= cursor);
            handles.rotate_left(split);
            handles.truncate(max_entries.max(1));
            handles
                .iter()
                .filter_map(|h| {
                    map.entries.get(h).map(|e| ScrubItem {
                        handle: *h,
                        m: Arc::clone(&e.m),
                        row_sums: e.row_sums.clone(),
                        col_sums: e.col_sums.clone(),
                    })
                })
                .collect()
        };
        let mut verified = 0u64;
        let mut corrupted: Vec<u64> = Vec::new();
        let mut last_visited = None;
        for item in &snapshot {
            let (rows_now, cols_now) = checksums(&item.m);
            if bits_eq(&rows_now, &item.row_sums) && bits_eq(&cols_now, &item.col_sums) {
                verified += 1;
            } else {
                corrupted.push(item.handle);
            }
            last_visited = Some(item.handle);
        }
        if let Some(h) = last_visited {
            self.scrub_cursor.store(h, Ordering::Relaxed);
        }
        let mut quarantined = 0u64;
        if !corrupted.is_empty() {
            let mut map = self.inner.lock();
            for h in &corrupted {
                // Handles are never reused, so presence means "still the
                // entry we verified" — released-in-the-window handles just
                // miss here and stay un-quarantined.
                if let Some(e) = map.entries.remove(h) {
                    self.account_removal(e.bytes);
                    map.quarantined.insert(*h);
                    quarantined += 1;
                    metrics::scrub_quarantined().add(1.0);
                }
            }
        }
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
        self.scrub_verified.fetch_add(verified, Ordering::Relaxed);
        self.scrub_corrupted
            .fetch_add(corrupted.len() as u64, Ordering::Relaxed);
        metrics::scrub_passes_total().inc();
        metrics::scrub_operands_verified_total().add(verified);
        metrics::scrub_corrupted_total().add(corrupted.len() as u64);
        ScrubReport {
            verified,
            corrupted: corrupted.len() as u64,
            quarantined,
        }
    }

    /// Flips one element of a resident operand *without* updating its
    /// stored checksums — simulates post-upload bit rot for scrubber
    /// tests. Returns whether the handle was resident.
    #[doc(hidden)]
    pub fn corrupt_resident_for_test(&self, handle: u64) -> bool {
        let mut map = self.inner.lock();
        let Some(e) = map.entries.get_mut(&handle) else {
            return false;
        };
        let mut m = (*e.m).clone();
        let Some(v) = m.as_mut_slice().first_mut() else {
            return false;
        };
        *v += 1.0;
        e.m = Arc::new(m);
        true
    }

    /// Un-counts a removed entry from the byte/handle gauges (store-local
    /// and global).
    fn account_removal(&self, bytes: u64) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
        self.handles.fetch_sub(1, Ordering::Relaxed);
        metrics::resident_operand_bytes().add(-(bytes as f64));
        metrics::operand_handles().add(-1.0);
    }

    /// Bytes currently held by resident operands.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Live handle count.
    pub fn handle_count(&self) -> u64 {
        self.handles.load(Ordering::Relaxed)
    }

    /// Operands evicted by the byte budget since the store was created.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Scrub passes run against this store.
    pub fn scrub_passes(&self) -> u64 {
        self.scrub_passes.load(Ordering::Relaxed)
    }

    /// Operands whose checksums re-verified clean, summed over all passes.
    pub fn scrub_verified(&self) -> u64 {
        self.scrub_verified.load(Ordering::Relaxed)
    }

    /// Checksum mismatches found, summed over all passes.
    pub fn scrub_corrupted(&self) -> u64 {
        self.scrub_corrupted.load(Ordering::Relaxed)
    }

    /// Handles currently quarantined (poisoned until released).
    pub fn quarantined_count(&self) -> u64 {
        self.inner.lock().quarantined.len() as u64
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize) -> Matrix<f64> {
        Matrix::filled(n, n, 1.0)
    }

    #[test]
    fn insert_get_release_accounting() {
        let s = OperandStore::new(1 << 20);
        let (h, resident) = s.insert(mat(4)).unwrap();
        assert_eq!(resident, 16 * 8);
        assert_eq!(s.resident_bytes(), 16 * 8);
        assert_eq!(s.handle_count(), 1);
        let m = s.get(h).unwrap();
        assert_eq!(m.nrows(), 4);
        assert!(s.release(h));
        assert!(!s.release(h));
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.handle_count(), 0);
        assert!(s.get(h).is_none());
        assert_eq!(s.try_get(h).err(), Some(StoreGetError::Unknown));
    }

    #[test]
    fn lru_eviction_spares_the_recently_used() {
        // Budget fits exactly two 4x4 operands.
        let s = OperandStore::new(2 * 16 * 8);
        let (h1, _) = s.insert(mat(4)).unwrap();
        let (h2, _) = s.insert(mat(4)).unwrap();
        // Touch h1 so h2 becomes the LRU victim.
        s.get(h1).unwrap();
        let (h3, _) = s.insert(mat(4)).unwrap();
        assert!(s.get(h1).is_some());
        assert!(s.get(h2).is_none());
        assert!(s.get(h3).is_some());
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.resident_bytes(), 2 * 16 * 8);
    }

    #[test]
    fn oversized_operand_is_rejected_not_inserted() {
        let s = OperandStore::new(100);
        let err = s.insert(mat(8)).unwrap_err();
        assert_eq!(err.bytes, 64 * 8);
        assert_eq!(err.budget, 100);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.handle_count(), 0);
    }

    #[test]
    fn in_flight_arc_survives_eviction() {
        let s = OperandStore::new(16 * 8);
        let (h1, _) = s.insert(mat(4)).unwrap();
        let held = s.get(h1).unwrap();
        let (_h2, _) = s.insert(mat(4)).unwrap();
        assert!(s.get(h1).is_none());
        // The evicted matrix stays readable through the Arc.
        assert_eq!(held.get(0, 0), 1.0);
    }

    #[test]
    fn scrub_verifies_clean_operands() {
        let s = OperandStore::new(1 << 20);
        let (h1, _) = s.insert(mat(4)).unwrap();
        let (h2, _) = s.insert(Matrix::random(6, 3, 42)).unwrap();
        let report = s.scrub(16);
        assert_eq!(report.verified, 2);
        assert_eq!(report.corrupted, 0);
        assert_eq!(report.quarantined, 0);
        assert!(s.get(h1).is_some());
        assert!(s.get(h2).is_some());
        assert_eq!(s.scrub_passes(), 1);
        assert_eq!(s.scrub_verified(), 2);
        assert_eq!(s.quarantined_count(), 0);
    }

    #[test]
    fn scrub_quarantines_corrupted_operand_and_poisons_its_handle() {
        let s = OperandStore::new(1 << 20);
        let (good, _) = s.insert(mat(4)).unwrap();
        let (bad, _) = s.insert(mat(4)).unwrap();
        assert!(s.corrupt_resident_for_test(bad));
        // Corruption is invisible until a scrub pass re-verifies.
        assert!(s.get(bad).is_some());
        let report = s.scrub(16);
        assert_eq!(report.verified, 1);
        assert_eq!(report.corrupted, 1);
        assert_eq!(report.quarantined, 1);
        // The poisoned handle now fails typed; the clean one still works.
        assert_eq!(s.try_get(bad).err(), Some(StoreGetError::Quarantined));
        assert!(s.get(good).is_some());
        assert_eq!(s.quarantined_count(), 1);
        assert_eq!(s.scrub_corrupted(), 1);
        // Bytes were returned at quarantine; release clears the marker.
        assert_eq!(s.resident_bytes(), 16 * 8);
        assert!(!s.release(bad));
        assert_eq!(s.quarantined_count(), 0);
        assert_eq!(s.try_get(bad).err(), Some(StoreGetError::Unknown));
    }

    #[test]
    fn bounded_scrub_passes_cover_the_store_via_the_cursor() {
        let s = OperandStore::new(1 << 20);
        let mut handles = Vec::new();
        for _ in 0..5 {
            handles.push(s.insert(mat(2)).unwrap().0);
        }
        // Two-entry passes: three passes cover all five and wrap.
        let r1 = s.scrub(2);
        let r2 = s.scrub(2);
        let r3 = s.scrub(2);
        assert_eq!(r1.verified + r2.verified + r3.verified, 6, "5 + 1 wrap");
        assert_eq!(s.scrub_passes(), 3);
    }

    #[test]
    fn scrub_on_empty_store_is_a_clean_noop() {
        let s = OperandStore::new(1 << 20);
        let report = s.scrub(8);
        assert_eq!(report, ScrubReport::default());
        assert_eq!(s.scrub_passes(), 1);
    }
}
