//! Server-resident operand store: ref-counted matrices behind `u64`
//! handles, with a byte budget enforced by LRU eviction.
//!
//! This is the server half of the clients-cache-operands-and-re-fire
//! pattern: a client uploads `A`/`B` once, then fires any number of
//! submits against the handles. [`OperandStore::get`] hands back an
//! `Arc<Matrix<f64>>` clone, which flows into
//! [`Operand::Shared`](ftgemm_serve::Operand) — zero matrix bytes are
//! copied per submit.
//!
//! Handles are minted from one store-wide counter, so a handle is never
//! reused and a stale handle (released or evicted) misses cleanly. The
//! store is shared by all connections of a server; each connection tracks
//! the handles it owns and releases them on disconnect, so a killed client
//! cannot leak resident bytes.

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): the
// byte/handle gauges are advisory accounting read by metrics and the
// admission check; the authoritative state lives under `inner`'s lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use ftgemm_core::Matrix;

use crate::metrics;

/// Upload rejection: the operand alone exceeds the store's byte budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Bytes the rejected operand would occupy.
    pub bytes: u64,
    /// The store's configured budget.
    pub budget: u64,
}

struct Entry {
    m: Arc<Matrix<f64>>,
    bytes: u64,
    /// Monotonic use tick; smallest = least recently used.
    last_used: u64,
}

/// Ref-counted server-resident operand matrices with byte-budget LRU
/// eviction. See the module docs for semantics.
pub struct OperandStore {
    inner: Mutex<HashMap<u64, Entry>>,
    budget: u64,
    next_handle: AtomicU64,
    tick: AtomicU64,
    // Authoritative copies of the store gauges: the global metric families
    // are process-wide and shared across tests, so deterministic
    // assertions read these instead.
    resident: AtomicU64,
    handles: AtomicU64,
    evictions: AtomicU64,
}

impl OperandStore {
    /// A store that evicts past `budget_bytes` of resident operand data.
    pub fn new(budget_bytes: u64) -> Self {
        OperandStore {
            inner: Mutex::new(HashMap::new()),
            budget: budget_bytes,
            next_handle: AtomicU64::new(1),
            tick: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            handles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Inserts a matrix, evicting least-recently-used entries if the
    /// budget requires it (never the matrix being inserted). Returns the
    /// minted handle and the resident bytes after insertion.
    pub fn insert(&self, m: Matrix<f64>) -> Result<(u64, u64), BudgetExceeded> {
        let bytes = std::mem::size_of_val(m.as_slice()) as u64;
        if bytes > self.budget {
            return Err(BudgetExceeded {
                bytes,
                budget: self.budget,
            });
        }
        let handle = self.next_handle.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock();
        // Evict until the newcomer fits.
        while self.resident.load(Ordering::Relaxed) + bytes > self.budget {
            // Resident bytes over budget implies a resident entry; if the
            // gauge ever drifts from the map, stop evicting rather than
            // panic the connection thread mid-upload.
            let Some(victim) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(h, _)| *h) else {
                break;
            };
            let Some(gone) = map.remove(&victim) else {
                break;
            };
            self.account_removal(gone.bytes);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            metrics::operand_evictions_total().inc();
        }
        map.insert(
            handle,
            Entry {
                m: Arc::new(m),
                bytes,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        let resident = self.resident.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.handles.fetch_add(1, Ordering::Relaxed);
        metrics::resident_operand_bytes().add(bytes as f64);
        metrics::operand_handles().add(1.0);
        Ok((handle, resident))
    }

    /// Resolves a handle to its shared matrix (bumping its LRU position),
    /// or `None` if the handle was never minted, released, or evicted.
    pub fn get(&self, handle: u64) -> Option<Arc<Matrix<f64>>> {
        let mut map = self.inner.lock();
        let e = map.get_mut(&handle)?;
        e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&e.m))
    }

    /// Drops a handle; returns whether it was resident. In-flight requests
    /// holding the `Arc` keep the data alive until they finish — release
    /// only un-counts it from the store.
    pub fn release(&self, handle: u64) -> bool {
        let mut map = self.inner.lock();
        match map.remove(&handle) {
            Some(e) => {
                self.account_removal(e.bytes);
                true
            }
            None => false,
        }
    }

    fn account_removal(&self, bytes: u64) {
        self.resident.fetch_sub(bytes, Ordering::Relaxed);
        self.handles.fetch_sub(1, Ordering::Relaxed);
        metrics::resident_operand_bytes().add(-(bytes as f64));
        metrics::operand_handles().add(-1.0);
    }

    /// Bytes currently held by resident operands.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Live handle count.
    pub fn handle_count(&self) -> u64 {
        self.handles.load(Ordering::Relaxed)
    }

    /// Operands evicted by the byte budget since the store was created.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize) -> Matrix<f64> {
        Matrix::filled(n, n, 1.0)
    }

    #[test]
    fn insert_get_release_accounting() {
        let s = OperandStore::new(1 << 20);
        let (h, resident) = s.insert(mat(4)).unwrap();
        assert_eq!(resident, 16 * 8);
        assert_eq!(s.resident_bytes(), 16 * 8);
        assert_eq!(s.handle_count(), 1);
        let m = s.get(h).unwrap();
        assert_eq!(m.nrows(), 4);
        assert!(s.release(h));
        assert!(!s.release(h));
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.handle_count(), 0);
        assert!(s.get(h).is_none());
    }

    #[test]
    fn lru_eviction_spares_the_recently_used() {
        // Budget fits exactly two 4x4 operands.
        let s = OperandStore::new(2 * 16 * 8);
        let (h1, _) = s.insert(mat(4)).unwrap();
        let (h2, _) = s.insert(mat(4)).unwrap();
        // Touch h1 so h2 becomes the LRU victim.
        s.get(h1).unwrap();
        let (h3, _) = s.insert(mat(4)).unwrap();
        assert!(s.get(h1).is_some());
        assert!(s.get(h2).is_none());
        assert!(s.get(h3).is_some());
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.resident_bytes(), 2 * 16 * 8);
    }

    #[test]
    fn oversized_operand_is_rejected_not_inserted() {
        let s = OperandStore::new(100);
        let err = s.insert(mat(8)).unwrap_err();
        assert_eq!(err.bytes, 64 * 8);
        assert_eq!(err.budget, 100);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.handle_count(), 0);
    }

    #[test]
    fn in_flight_arc_survives_eviction() {
        let s = OperandStore::new(16 * 8);
        let (h1, _) = s.insert(mat(4)).unwrap();
        let held = s.get(h1).unwrap();
        let (_h2, _) = s.insert(mat(4)).unwrap();
        assert!(s.get(h1).is_none());
        // The evicted matrix stays readable through the Arc.
        assert_eq!(held.get(0, 0), 1.0);
    }
}
