//! Per-connection protocol state machine: a reader thread (this module's
//! entry point), a writer thread, and a completion-pump thread.
//!
//! The reader owns the protocol: it decodes frames, resolves operand
//! handles against the shared [`OperandStore`], and bridges admissions
//! into [`GemmService::submit_streamed`]. The pump drains the
//! connection's [`Completions`] stream and either pushes each finished
//! request down the writer (stream delivery) or parks it in the held
//! table for Poll/Wait (hold delivery). The writer serializes all
//! outbound frames so responses and pushed completions interleave without
//! tearing.
//!
//! Every protocol-level failure (malformed frame, oversize frame, unknown
//! verb/handle/request, unsupported version, in-flight cap) is answered
//! with a typed [`Frame::Error`] and the connection stays alive; only I/O
//! failure or an explicit Shutdown ends it. On exit — clean or not — the
//! connection joins its threads and releases every operand handle it
//! owns, so a killed client returns the store's resident bytes to
//! baseline.

// analyze::policy(publish: server_stop as net_stop)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// `server_stop` aliases the server's `stop` publication cell — a Shutdown
// frame Release-stores it here and the accept loop Acquire-loads it. The
// `in_flight` gauge is a plain Relaxed counter (the in-flight cap is
// advisory backpressure, not a synchronization point).

use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use std::thread;

use ftgemm_abft::FtPolicy;
use ftgemm_core::Matrix;
use ftgemm_serve::{
    completion_channel, Completion, GemmRequest, GemmService, Operand, Priority, ServeError,
};

use crate::codec::{read_frame, write_frame, ReadEvent, WireError};
use crate::metrics;
use crate::proto::{
    error_code, CompletionFrame, CompletionOk, Frame, OperandRef, SubmitFrame, FEATURES,
    PROTO_VERSION,
};
use crate::store::{OperandStore, StoreGetError};

/// Everything a connection needs from its server.
pub(crate) struct ConnContext {
    pub service: Arc<GemmService<f64>>,
    pub store: Arc<OperandStore>,
    pub max_frame: u32,
    pub max_in_flight: usize,
    /// Set when a client issues Shutdown; the accept loop checks it.
    pub server_stop: Arc<AtomicBool>,
    /// The server's own listen address, used to wake the blocked accept
    /// loop after Shutdown.
    pub server_addr: SocketAddr,
}

/// State shared between the reader and the completion pump.
struct SharedState {
    /// Hold-delivery requests: id -> parked completion (None until it
    /// finishes). Ids are inserted under the lock *before* submit returns,
    /// so the pump can never race a completion past its registration.
    held: HashMap<u64, Option<CompletionFrame>>,
    /// Bumped per successful submit; the pump's gate out of its park.
    submitted_gen: u64,
    /// The reader has exited; the pump drains in-flight work and stops.
    closing: bool,
}

struct Shared {
    state: Mutex<SharedState>,
    /// Wakes the pump (new submit or closing).
    gate: Condvar,
    /// Wakes a reader blocked in Wait (held completion arrived).
    held_ready: Condvar,
}

fn serve_error_frame(id: u64, e: &ServeError) -> Frame {
    Frame::Error {
        id,
        code: e.wire_code(),
        message: e.to_string(),
    }
}

fn completion_to_frame(c: Completion<f64>) -> CompletionFrame {
    let result = match c.result {
        Ok(resp) => Ok(CompletionOk {
            rows: resp.c.nrows() as u32,
            cols: resp.c.ncols() as u32,
            data: resp.c.as_slice().to_vec(),
            verifications: resp.report.verifications as u64,
            detected: resp.report.detected as u64,
            corrected: resp.report.corrected as u64,
            injected: resp.report.injected as u64,
            retried_panels: resp.report.retried_panels as u64,
        }),
        Err(e) => Err((e.wire_code(), e.to_string())),
    };
    CompletionFrame { id: c.id, result }
}

/// Turns a wire submit into a service request. Handle misses surface as
/// an error frame, not a disconnect.
fn build_request(s: SubmitFrame, store: &OperandStore) -> Result<GemmRequest<f64>, (u16, String)> {
    let resolve = |op: OperandRef| -> Result<Operand<f64>, (u16, String)> {
        match op {
            OperandRef::Inline { rows, cols, data } => {
                Matrix::from_col_major(rows as usize, cols as usize, &data)
                    .map(Operand::Owned)
                    .map_err(|e| (error_code::MALFORMED_FRAME, e.to_string()))
            }
            OperandRef::Handle(h) => {
                store
                    .try_get(h)
                    .map(Operand::Shared)
                    .map_err(|e| match e {
                        StoreGetError::Quarantined => (
                            error_code::OPERAND_QUARANTINED,
                            format!(
                                "operand handle {h} was quarantined by the scrubber (resident bytes no longer match upload-time checksums); release and re-upload"
                            ),
                        ),
                        StoreGetError::Unknown => (
                            error_code::UNKNOWN_HANDLE,
                            format!("operand handle {h} is not resident"),
                        ),
                    })
            }
        }
    };
    let a = resolve(s.a)?;
    let b = resolve(s.b)?;
    let c = match s.c {
        Some((rows, cols, data)) => Matrix::from_col_major(rows as usize, cols as usize, &data)
            .map_err(|e| (error_code::MALFORMED_FRAME, e.to_string()))?,
        None => Matrix::zeros(a.nrows(), b.ncols()),
    };
    // Discriminants are codec-validated (<= 2), so these matches are total.
    let policy = match s.policy {
        0 => FtPolicy::Off,
        1 => FtPolicy::Detect,
        _ => FtPolicy::DetectCorrect,
    };
    let priority = match s.priority {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    };
    Ok(GemmRequest {
        alpha: s.alpha,
        a,
        b,
        beta: s.beta,
        c,
        policy,
        injector: None,
        home: None,
        tenant: s.tenant,
        priority,
        deadline: (s.deadline_ns > 0).then(|| Duration::from_nanos(s.deadline_ns)),
    })
}

/// Runs one client connection to completion. Called from the accept
/// loop's per-connection thread.
pub(crate) fn handle_conn(stream: TcpStream, ctx: ConnContext) {
    metrics::connections().add(1.0);
    metrics::connections_total().inc();

    let shared = Arc::new(Shared {
        state: Mutex::new(SharedState {
            held: HashMap::new(),
            submitted_gen: 0,
            closing: false,
        }),
        gate: Condvar::new(),
        held_ready: Condvar::new(),
    });
    let in_flight = Arc::new(AtomicUsize::new(0));

    // Writer thread: sole owner of the outbound half; serializes
    // responses and pushed completions.
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer = {
        let mut out = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                metrics::connections().add(-1.0);
                return;
            }
        };
        thread::spawn(move || {
            while let Ok(frame) = rx.recv() {
                match write_frame(&mut out, &frame) {
                    Ok(n) => {
                        metrics::frames_out_total().inc();
                        metrics::bytes_out_total().add(n);
                    }
                    Err(_) => break,
                }
            }
        })
    };

    // Completion pump: drains this connection's stream. `Completions::
    // recv` reports end-of-stream whenever the queue is empty and nothing
    // is in flight (a snapshot, not a close), so the pump parks on the
    // gate until the reader either submits more work or closes.
    let (sink, mut completions) = completion_channel::<f64>();
    let pump = {
        let shared = Arc::clone(&shared);
        let in_flight = Arc::clone(&in_flight);
        let tx = tx.clone();
        thread::spawn(move || {
            let mut seen_gen = 0u64;
            loop {
                match completions.recv() {
                    Some(c) => {
                        let frame = completion_to_frame(c);
                        let mut st = shared.state.lock();
                        if let Some(slot) = st.held.get_mut(&frame.id) {
                            *slot = Some(frame);
                            shared.held_ready.notify_all();
                        } else {
                            drop(st);
                            let _ = tx.send(Frame::Completion(frame));
                        }
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                    }
                    None => {
                        let mut st = shared.state.lock();
                        while st.submitted_gen == seen_gen && !st.closing {
                            shared.gate.wait(&mut st);
                        }
                        if st.closing && st.submitted_gen == seen_gen {
                            break;
                        }
                        seen_gen = st.submitted_gen;
                    }
                }
            }
        })
    };

    let mut owned: HashSet<u64> = HashSet::new();
    let mut hello_done = false;
    let mut stop_server = false;
    let mut reader = BufReader::new(stream);

    // Block scope so the sender borrows end before teardown drops `tx`.
    {
        let send = |frame: Frame| {
            let _ = tx.send(frame);
        };
        let protocol_error = |id: u64, code: u16, message: String| {
            metrics::protocol_errors_total().inc();
            let _ = tx.send(Frame::Error { id, code, message });
        };

        while let Ok((event, n)) = read_frame(&mut reader, ctx.max_frame) {
            metrics::bytes_in_total().add(n);
            let frame = match event {
                ReadEvent::Eof => break,
                ReadEvent::TooLarge { len } => {
                    protocol_error(
                        0,
                        error_code::FRAME_TOO_LARGE,
                        format!("frame of {len} bytes exceeds max {}", ctx.max_frame),
                    );
                    continue;
                }
                ReadEvent::Malformed(WireError::UnknownVerb(v)) => {
                    protocol_error(0, error_code::UNKNOWN_VERB, format!("unknown verb {v}"));
                    continue;
                }
                ReadEvent::Malformed(e) => {
                    protocol_error(0, error_code::MALFORMED_FRAME, e.to_string());
                    continue;
                }
                ReadEvent::Frame(f) => f,
            };
            metrics::frames_in_total().inc();

            if !hello_done {
                match frame {
                    Frame::Hello { version, features } => {
                        if version != PROTO_VERSION {
                            protocol_error(
                                0,
                                error_code::UNSUPPORTED_VERSION,
                                format!(
                                    "server speaks version {PROTO_VERSION}, client sent {version}"
                                ),
                            );
                        } else {
                            hello_done = true;
                            send(Frame::ServerHello {
                                version: PROTO_VERSION,
                                features: features & FEATURES,
                                max_frame: ctx.max_frame,
                            });
                        }
                    }
                    _ => protocol_error(
                        0,
                        error_code::EXPECTED_HELLO,
                        "first frame must be Hello".into(),
                    ),
                }
                continue;
            }

            match frame {
                Frame::Hello { .. } => {
                    // Re-negotiation is a no-op; answer with the same hello.
                    send(Frame::ServerHello {
                        version: PROTO_VERSION,
                        features: FEATURES,
                        max_frame: ctx.max_frame,
                    });
                }
                Frame::UploadOperand { rows, cols, data } => {
                    match Matrix::from_col_major(rows as usize, cols as usize, &data) {
                        Err(e) => protocol_error(0, error_code::MALFORMED_FRAME, e.to_string()),
                        Ok(m) => match ctx.store.insert(m) {
                            Ok((handle, resident_bytes)) => {
                                owned.insert(handle);
                                send(Frame::OperandHandle {
                                    handle,
                                    resident_bytes,
                                });
                            }
                            Err(e) => protocol_error(
                                0,
                                error_code::OPERAND_BUDGET,
                                format!(
                                    "operand of {} bytes exceeds store budget of {}",
                                    e.bytes, e.budget
                                ),
                            ),
                        },
                    }
                }
                Frame::Submit(s) => {
                    if in_flight.load(Ordering::Relaxed) >= ctx.max_in_flight {
                        protocol_error(
                            0,
                            error_code::TOO_MANY_IN_FLIGHT,
                            format!(
                                "connection already has {} requests in flight",
                                ctx.max_in_flight
                            ),
                        );
                        continue;
                    }
                    let hold = s.hold;
                    let req = match build_request(s, &ctx.store) {
                        Ok(r) => r,
                        Err((code, message)) => {
                            protocol_error(0, code, message);
                            continue;
                        }
                    };
                    // Hold the shared lock across submit so a hold-delivery id
                    // is registered before its completion can be pumped.
                    let mut st = shared.state.lock();
                    in_flight.fetch_add(1, Ordering::Relaxed);
                    match ctx.service.submit_streamed(req, &sink) {
                        Ok(id) => {
                            if hold {
                                st.held.insert(id, None);
                            }
                            st.submitted_gen += 1;
                            shared.gate.notify_all();
                            drop(st);
                            send(Frame::SubmitAck { id });
                        }
                        Err(e) => {
                            in_flight.fetch_sub(1, Ordering::Relaxed);
                            drop(st);
                            send(serve_error_frame(0, &e));
                        }
                    }
                }
                Frame::Poll { id } => {
                    let mut st = shared.state.lock();
                    match st.held.get_mut(&id) {
                        None => {
                            drop(st);
                            protocol_error(
                                id,
                                error_code::UNKNOWN_REQUEST,
                                format!("request {id} is not held on this connection"),
                            );
                        }
                        Some(slot) => match slot.take() {
                            Some(c) => {
                                st.held.remove(&id);
                                drop(st);
                                send(Frame::Completion(c));
                            }
                            None => {
                                drop(st);
                                send(Frame::Pending { id });
                            }
                        },
                    }
                }
                Frame::Wait { id } => {
                    let mut st = shared.state.lock();
                    if !st.held.contains_key(&id) {
                        drop(st);
                        protocol_error(
                            id,
                            error_code::UNKNOWN_REQUEST,
                            format!("request {id} is not held on this connection"),
                        );
                        continue;
                    }
                    while matches!(st.held.get(&id), Some(None)) {
                        shared.held_ready.wait(&mut st);
                    }
                    match st.held.remove(&id) {
                        Some(Some(c)) => {
                            drop(st);
                            send(Frame::Completion(c));
                        }
                        // Only this reader thread removes held entries, so
                        // the slot it just observed cannot vanish — but a
                        // protocol error beats a poisoned connection if
                        // that invariant ever breaks.
                        _ => {
                            drop(st);
                            protocol_error(
                                id,
                                error_code::UNKNOWN_REQUEST,
                                format!("request {id} was lost while waiting"),
                            );
                        }
                    }
                }
                Frame::ReleaseHandle { handle } => {
                    if owned.remove(&handle) {
                        // Best-effort: the store entry may already be evicted.
                        ctx.store.release(handle);
                        send(Frame::Released { handle });
                    } else {
                        protocol_error(
                            0,
                            error_code::UNKNOWN_HANDLE,
                            format!("handle {handle} is not owned by this connection"),
                        );
                    }
                }
                Frame::Shutdown => {
                    send(Frame::Goodbye);
                    stop_server = true;
                    break;
                }
                // Server→client frames arriving server-bound.
                Frame::ServerHello { .. }
                | Frame::OperandHandle { .. }
                | Frame::SubmitAck { .. }
                | Frame::Pending { .. }
                | Frame::Completion(_)
                | Frame::Released { .. }
                | Frame::Goodbye
                | Frame::Error { .. } => {
                    protocol_error(
                        0,
                        error_code::MALFORMED_FRAME,
                        format!("verb {} is server-to-client only", frame.verb()),
                    );
                }
            }
        }
    }

    // Teardown: let the pump drain in-flight work, then stop it; close
    // the writer; return owned operands to the store.
    {
        let mut st = shared.state.lock();
        st.closing = true;
        shared.gate.notify_all();
    }
    let _ = pump.join();
    drop(tx);
    let _ = writer.join();
    for handle in owned {
        ctx.store.release(handle);
    }
    metrics::connections().add(-1.0);

    if stop_server {
        ctx.server_stop.store(true, Ordering::Release);
        // Wake the accept loop blocked in accept().
        let _ = TcpStream::connect(ctx.server_addr);
    }
}
