//! TCP wire frontend for the FT-GEMM service: "serving" over a socket.
//!
//! The rest of the workspace is a deep in-process serving stack —
//! [`GemmService`](ftgemm_serve::GemmService) with async submission, NUMA
//! sharding, QoS, and a `/metrics` endpoint. This crate puts that stack
//! on the network: [`NetServer`] accepts TCP connections speaking a
//! small, versioned, length-prefixed binary protocol (no external
//! dependencies; `std::net` all the way down, like `ftgemm-obs`'s
//! `ObsServer`), and [`NetClient`] is the matching blocking client.
//!
//! The protocol's centerpiece is operand reuse: a client uploads its
//! `A`/`B` matrices once ([`Frame::UploadOperand`]), gets back
//! server-resident handles, and then fires any number of submits against
//! them — each submit ships a few dozen header bytes instead of the
//! matrices, and the server builds requests against shared
//! (`Arc`-backed, zero-copy) operands. The full
//! [`GemmRequest`](ftgemm_serve::GemmRequest) surface rides in the submit
//! header: FT policy, tenant, priority, and deadline, so QoS admission
//! control and deadline rejection are first-class wire errors.
//!
//! Module map:
//! - [`proto`]: frame vocabulary, version/feature constants, pinned verb
//!   bytes and error codes.
//! - [`codec`]: total encode/decode plus blocking frame I/O that survives
//!   oversized and malformed frames.
//! - [`store`]: [`OperandStore`] — ref-counted server-resident operands
//!   with byte-budget LRU eviction and a checksum scrubber that
//!   quarantines operands that rot after upload.
//! - `conn`: per-connection reader/writer/completion-pump threads
//!   bridging into `submit_streamed`.
//! - [`server`] / [`client`]: the two endpoints.
//! - `metrics`: the `ftgemm_net_*` metric families (documented there).

pub mod client;
pub mod codec;
mod conn;
mod metrics;
pub mod proto;
pub mod server;
pub mod store;

pub use client::{ClientError, NetClient, NetSubmit};
pub use codec::{ReadEvent, WireError};
pub use proto::{
    error_code, CompletionFrame, CompletionOk, Frame, OperandRef, SubmitFrame, FEATURES,
    PROTO_VERSION,
};
pub use server::{NetServer, NetServerConfig};
pub use store::{BudgetExceeded, OperandStore, ScrubReport, StoreGetError};
