//! Observability for the FT-GEMM serving stack: a lock-free metrics
//! registry, request-lifecycle tracing, and a Prometheus `/metrics`
//! endpoint served over [`std::net`].
//!
//! Three layers, each usable alone:
//!
//! * **Primitives** ([`Counter`], [`Gauge`], [`Histogram`]) — relaxed
//!   atomics only; recording a latency sample is three `fetch_add`s with
//!   no locks or allocation on the hot path.
//! * **Registry** ([`Registry`]) — names, help text, and label sets,
//!   rendered as one Prometheus text exposition ([`Exposition`]). The
//!   process-wide [`Registry::global`] backs the one-line
//!   [`global_counter!`] / [`global_gauge!`] instrumentation macros;
//!   scoped registries (one per service) render into the same scrape.
//! * **Endpoint** ([`ObsServer`]) — a tiny HTTP/1.0 server thread bound
//!   to a configured address, answering `GET /metrics`, `/healthz`, and
//!   `/trace`.
//!
//! Request lifecycles are traced into per-node ring buffers
//! ([`Tracelog`]): `admitted → queued → dispatched(node, path) → computed
//! → verified/corrected → completed | failed`, each stamped with
//! monotonic nanoseconds and dumpable at `/trace`.
//!
//! The crate also owns the workspace's single percentile definition
//! ([`percentile`] / [`nearest_rank`]); [`Histogram::quantile`] uses the
//! same nearest-rank rule, which pins the bucketed-vs-exact agreement
//! property the test suite checks.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod expo;
mod metrics;
mod percentile;
mod registry;
mod server;
mod trace;

pub use expo::{Exposition, MetricKind};
pub use metrics::{bucket_bounds, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use percentile::{nearest_rank, percentile};
pub use registry::Registry;
pub use server::{Handler, ObsRoutes, ObsServer};
pub use trace::{TraceEvent, TracePath, TraceRecord, Tracelog};
