//! Prometheus text exposition format (version 0.0.4) builder.
//!
//! [`Exposition`] accumulates metric families and samples into the
//! plaintext format a Prometheus scraper parses: one `# HELP` and one
//! `# TYPE` line per family, then its samples. Family names are checked
//! for duplicates at build time — emitting the same family twice in one
//! scrape is a registration bug, not a data condition, so it panics.

use crate::metrics::{Histogram, HISTOGRAM_BUCKETS};
use std::collections::HashSet;

/// The exposition `# TYPE` of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Free-moving value.
    Gauge,
    /// Cumulative bucket distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Builder for one scrape's plaintext body.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    seen: HashSet<String>,
}

/// Escapes a HELP string (`\\` and newlines per the exposition spec).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\\`, `"`, newlines).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a nanosecond bucket bound as seconds with exact decimals
/// (`3` → `0.000000003`), avoiding the float-multiplication artifacts a
/// naive `ns as f64 * 1e-9` Display would leak into `le` labels.
fn format_le_seconds(ns: u64) -> String {
    let s = format!("{:.9}", ns as f64 / 1e9);
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

/// Renders a sample value: integers without a fraction, non-finite values
/// in Prometheus spelling (`+Inf`/`-Inf`/`NaN`).
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Exposition {
    /// Empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a family of this name was already declared (lets a renderer
    /// skip process-global families another source already emitted).
    pub fn has_family(&self, name: &str) -> bool {
        self.seen.contains(name)
    }

    /// Declares a metric family: emits its `# HELP` and `# TYPE` header.
    /// Every family must be declared exactly once per scrape, before its
    /// samples; a duplicate name panics (registration bug).
    pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) {
        assert!(
            self.seen.insert(name.to_string()),
            "duplicate metric family {name:?} in one exposition"
        );
        debug_assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out
            .push_str(&format!("# TYPE {name} {}\n", kind.as_str()));
    }

    /// Emits one sample line `name{labels} value` (labels may be empty).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Declares and renders a complete histogram family from `h`:
    /// cumulative `_bucket{le=...}` lines (bounds in **seconds**, samples
    /// recorded in nanoseconds), `_sum` (seconds) and `_count`. Extra
    /// `labels` are attached to every line.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.family(name, MetricKind::Histogram, help);
        let bucket_name = format!("{name}_bucket");
        let counts = h.bucket_counts();
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            // Keep scrapes compact: skip the all-zero prefix, stop at the
            // last finite bucket (the tail is covered by +Inf below).
            if cum == 0 || i == HISTOGRAM_BUCKETS - 1 {
                continue;
            }
            let le_s = format_le_seconds(Histogram::bucket_upper(i));
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", le_s.as_str()));
            self.sample(&bucket_name, &with_le, cum as f64);
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_inf, h.count() as f64);
        self.sample(&format!("{name}_sum"), labels, h.sum() as f64 / 1e9);
        self.sample(&format!("{name}_count"), labels, h.count() as f64);
    }

    /// The accumulated plaintext body.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_family_and_samples() {
        let mut e = Exposition::new();
        e.family("ftgemm_test_total", MetricKind::Counter, "A test counter.");
        e.sample("ftgemm_test_total", &[], 3.0);
        e.sample("ftgemm_test_total", &[("node", "0")], 2.0);
        let s = e.finish();
        assert!(s.contains("# HELP ftgemm_test_total A test counter.\n"));
        assert!(s.contains("# TYPE ftgemm_test_total counter\n"));
        assert!(s.contains("ftgemm_test_total 3\n"));
        assert!(s.contains("ftgemm_test_total{node=\"0\"} 2\n"));
    }

    #[test]
    #[should_panic(expected = "duplicate metric family")]
    fn duplicate_family_panics() {
        let mut e = Exposition::new();
        e.family("ftgemm_dup", MetricKind::Gauge, "x");
        e.family("ftgemm_dup", MetricKind::Counter, "y");
    }

    #[test]
    fn escapes_label_values_and_help() {
        let mut e = Exposition::new();
        e.family("ftgemm_esc", MetricKind::Gauge, "line\nbreak \\ slash");
        e.sample("ftgemm_esc", &[("p", "a\"b\\c\nd")], 1.0);
        let s = e.finish();
        assert!(s.contains("# HELP ftgemm_esc line\\nbreak \\\\ slash\n"));
        assert!(s.contains("p=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let h = Histogram::new();
        h.record(1); // bucket 1 (le 1ns)
        h.record(3); // bucket 2 (le 3ns)
        h.record(3);
        let mut e = Exposition::new();
        e.histogram("ftgemm_h_seconds", "h", &[], &h);
        let s = e.finish();
        assert!(s.contains("# TYPE ftgemm_h_seconds histogram\n"));
        assert!(s.contains("le=\"+Inf\"} 3\n"));
        assert!(s.contains("ftgemm_h_seconds_count 3\n"));
        // Cumulative: the bucket covering 3ns contains all three samples.
        assert!(s.contains("le=\"0.000000003\"} 3\n"), "{s}");
    }

    #[test]
    fn le_seconds_exact_decimals() {
        assert_eq!(format_le_seconds(0), "0");
        assert_eq!(format_le_seconds(1), "0.000000001");
        assert_eq!(format_le_seconds(3), "0.000000003");
        assert_eq!(format_le_seconds(1_000_000_000), "1");
        assert_eq!(format_le_seconds(1_500_000_000), "1.5");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(0.5), "0.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }
}
