//! Metric registry: named, labeled families of counters/gauges/histograms.
//!
//! Registration (start-up, rare) takes a lock; the returned `Arc` handles
//! are the hot-path interface and touch only their own atomics. A process
//! has one [`Registry::global`] for crate-level instrumentation (see the
//! [`global_counter!`](crate::global_counter) /
//! [`global_gauge!`](crate::global_gauge) macros — one line per site), and
//! any number of scoped registries (one per `GemmService`, say) whose
//! families are rendered into the same scrape.

use crate::expo::{Exposition, MetricKind};
use crate::metrics::{Counter, Gauge, Histogram};
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

/// One registered handle.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A family: one name/help/kind, one instance per label set.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    instances: Vec<(Vec<(String, String)>, Handle)>,
}

/// A set of metric families, renderable as one Prometheus exposition.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry crate-level instrumentation registers
    /// into (the [`global_counter!`](crate::global_counter) family of
    /// macros). Rendered by every [`ObsServer`](crate::ObsServer) scrape
    /// alongside the service-scoped registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                let handle = make();
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind: handle.kind(),
                    instances: Vec::new(),
                });
                let f = families.last_mut().expect("just pushed");
                f.instances.push((
                    labels
                        .iter()
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .collect(),
                    handle.clone(),
                ));
                return handle;
            }
        };
        // Same (name, labels) → the existing handle; registration is
        // idempotent so static call sites can re-run freely.
        if let Some((_, h)) = family.instances.iter().find(|(l, _)| {
            l.len() == labels.len() && l.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return h.clone();
        }
        let handle = make();
        assert_eq!(
            handle.kind(),
            family.kind,
            "metric {name:?} re-registered with a different kind"
        );
        family.instances.push((
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            handle.clone(),
        ));
        handle
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter with a label set.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge with a label set.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, labels, || Handle::Gauge(Arc::new(Gauge::new()))) {
            Handle::Gauge(g) => g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        match self.register(name, help, &[], || {
            Handle::Histogram(Arc::new(Histogram::new()))
        }) {
            Handle::Histogram(h) => h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Renders every family into `expo`. Families whose name `expo` has
    /// already seen are skipped (so a scrape combining several registries
    /// never double-declares — first renderer wins).
    pub fn render_into(&self, expo: &mut Exposition) {
        let families = self.families.lock();
        for f in families.iter() {
            if expo.has_family(&f.name) {
                continue;
            }
            match f.kind {
                MetricKind::Histogram => {
                    for (labels, handle) in &f.instances {
                        let labels: Vec<(&str, &str)> = labels
                            .iter()
                            .map(|(k, v)| (k.as_str(), v.as_str()))
                            .collect();
                        if let Handle::Histogram(h) = handle {
                            expo.histogram(&f.name, &f.help, &labels, h);
                        }
                    }
                }
                kind => {
                    expo.family(&f.name, kind, &f.help);
                    for (labels, handle) in &f.instances {
                        let labels: Vec<(&str, &str)> = labels
                            .iter()
                            .map(|(k, v)| (k.as_str(), v.as_str()))
                            .collect();
                        let value = match handle {
                            Handle::Counter(c) => c.get() as f64,
                            Handle::Gauge(g) => g.get(),
                            Handle::Histogram(_) => unreachable!("kind checked at registration"),
                        };
                        expo.sample(&f.name, &labels, value);
                    }
                }
            }
        }
    }

    /// Renders this registry alone as a complete exposition body.
    pub fn render(&self) -> String {
        let mut expo = Exposition::new();
        self.render_into(&mut expo);
        expo.finish()
    }
}

/// Registers a [`Counter`](crate::Counter) in the global registry once and
/// returns `&'static Counter` — an instrumentation site is one line:
///
/// ```
/// ftgemm_obs::global_counter!("ftgemm_doc_example_total", "Example.").inc();
/// ```
#[macro_export]
macro_rules! global_counter {
    ($name:expr, $help:expr) => {{
        static __FTGEMM_OBS_C: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**__FTGEMM_OBS_C.get_or_init(|| $crate::Registry::global().counter($name, $help))
    }};
}

/// Registers a [`Gauge`](crate::Gauge) in the global registry once and
/// returns `&'static Gauge`:
///
/// ```
/// ftgemm_obs::global_gauge!("ftgemm_doc_example_workers", "Example.").add(1.0);
/// ```
#[macro_export]
macro_rules! global_gauge {
    ($name:expr, $help:expr) => {{
        static __FTGEMM_OBS_G: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__FTGEMM_OBS_G.get_or_init(|| $crate::Registry::global().gauge($name, $help))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("ftgemm_reg_test_total", "t");
        let b = r.counter("ftgemm_reg_test_total", "t");
        a.inc();
        assert_eq!(b.get(), 1, "same handle behind both registrations");
    }

    #[test]
    fn labeled_instances_are_distinct() {
        let r = Registry::new();
        let n0 = r.counter_with("ftgemm_reg_node_total", "t", &[("node", "0")]);
        let n1 = r.counter_with("ftgemm_reg_node_total", "t", &[("node", "1")]);
        n0.add(3);
        n1.add(5);
        let s = r.render();
        assert!(s.contains("ftgemm_reg_node_total{node=\"0\"} 3\n"));
        assert!(s.contains("ftgemm_reg_node_total{node=\"1\"} 5\n"));
        assert_eq!(
            s.matches("# TYPE ftgemm_reg_node_total").count(),
            1,
            "one family header for all label sets"
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("ftgemm_reg_kind", "t");
        let _ = r.gauge_with("ftgemm_reg_kind", "t", &[("x", "y")]);
    }

    #[test]
    fn render_skips_families_already_in_exposition() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("ftgemm_reg_shared_total", "t").inc();
        r2.counter("ftgemm_reg_shared_total", "t").add(10);
        let mut expo = Exposition::new();
        r1.render_into(&mut expo);
        r2.render_into(&mut expo); // skipped: r1 already declared it
        let s = expo.finish();
        assert!(s.contains("ftgemm_reg_shared_total 1\n"));
        assert!(!s.contains("ftgemm_reg_shared_total 10"));
    }

    #[test]
    fn global_macro_returns_one_static_handle() {
        let c = global_counter!("ftgemm_reg_macro_total", "t");
        let before = c.get();
        global_counter!("ftgemm_reg_macro_total", "t").inc();
        assert_eq!(c.get(), before + 1);
    }
}
