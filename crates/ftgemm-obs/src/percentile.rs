//! The one percentile implementation shared across the workspace.
//!
//! Both the exact sorted-sample percentile (used by `ftgemm-bench`'s
//! latency tables, re-exported there) and the histogram-derived quantile
//! ([`Histogram::quantile`](crate::Histogram)) pick the **same**
//! nearest-rank sample, so a bucketed percentile differs from the exact one
//! only by the resolution of the bucket that sample fell in — never by a
//! rank-definition mismatch.

/// 0-based nearest-rank index for the `pct`-th percentile over `n` sorted
/// samples: `round(pct/100 * (n-1))`, clamped into `[0, n-1]` (so
/// out-of-range percentiles saturate at the extremes).
pub fn nearest_rank(pct: f64, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let rank = ((pct / 100.0) * (n - 1) as f64).round();
    (rank.max(0.0) as usize).min(n - 1)
}

/// Percentile (0..=100, nearest-rank on a copy) of a sample set; `0.0` for
/// an empty set.
pub fn percentile(samples: &[f64], pct: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    sorted[nearest_rank(pct, sorted.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_edges() {
        assert_eq!(nearest_rank(50.0, 0), 0);
        assert_eq!(nearest_rank(0.0, 5), 0);
        assert_eq!(nearest_rank(100.0, 5), 4);
        assert_eq!(nearest_rank(150.0, 5), 4, "clamps above 100");
        assert_eq!(nearest_rank(-10.0, 5), 0, "clamps below 0");
        // Two samples: half-away-from-zero rounding puts 50% on the upper.
        assert_eq!(nearest_rank(49.0, 2), 0);
        assert_eq!(nearest_rank(50.0, 2), 1);
    }

    #[test]
    fn percentile_matches_sorted_rank() {
        let samples: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 99.0), 99.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
