//! Request-lifecycle tracing: fixed-capacity per-node ring buffers of span
//! events, stamped with monotonic nanoseconds.
//!
//! The lifecycle a served request walks is
//!
//! ```text
//! admitted → queued → dispatched(node, path) → computed
//!          → verified / corrected → completed | failed
//! ```
//!
//! Each transition is one [`TraceRecord`] pushed into the ring of the node
//! it happened on. Rings are bounded (oldest records overwritten, the
//! overwrite count kept), so tracing cost and memory are constant no
//! matter how long the service runs. [`Tracelog::recent`] merges the rings
//! into a time-ordered tail for the `/trace` endpoint.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which execution path a dispatch chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePath {
    /// Coalesced into a batched parallel region.
    Batched,
    /// Routed to the matrix-parallel driver.
    Parallel,
}

impl TracePath {
    /// Stable lowercase label (`batched` / `parallel`).
    pub fn as_str(self) -> &'static str {
        match self {
            TracePath::Batched => "batched",
            TracePath::Parallel => "parallel",
        }
    }
}

/// One lifecycle transition of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Accepted by a submit surface (pre-queue).
    Admitted,
    /// Parked in its affinity node's shard group.
    Queued,
    /// Popped by a dispatcher and routed (the record's node is the
    /// *executing* node, which differs from the affinity node when
    /// stolen).
    Dispatched {
        /// The execution path the router chose.
        path: TracePath,
    },
    /// The GEMM finished computing (before result bookkeeping).
    Computed,
    /// ABFT verification ran clean or flagged; count of verification
    /// passes.
    Verified {
        /// Verification passes this request's report counted.
        verifications: u64,
    },
    /// ABFT corrected errors in place.
    Corrected {
        /// Elements corrected.
        corrected: u64,
    },
    /// Result delivered successfully.
    Completed,
    /// Result delivered as an error.
    Failed,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Admitted => write!(f, "admitted"),
            TraceEvent::Queued => write!(f, "queued"),
            TraceEvent::Dispatched { path } => write!(f, "dispatched(path={})", path.as_str()),
            TraceEvent::Computed => write!(f, "computed"),
            TraceEvent::Verified { verifications } => {
                write!(f, "verified(passes={verifications})")
            }
            TraceEvent::Corrected { corrected } => write!(f, "corrected(elements={corrected})"),
            TraceEvent::Completed => write!(f, "completed"),
            TraceEvent::Failed => write!(f, "failed"),
        }
    }
}

/// One traced transition: request id, node, monotonic timestamp, event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// The service-assigned request id.
    pub id: u64,
    /// Node whose ring holds the record (affinity node for
    /// admitted/queued, executing node from dispatch onward).
    pub node: usize,
    /// Nanoseconds since the tracelog's epoch (its construction instant).
    pub t_ns: u64,
    /// The lifecycle transition.
    pub event: TraceEvent,
}

/// Per-node bounded ring buffers of [`TraceRecord`]s.
#[derive(Debug)]
pub struct Tracelog {
    epoch: Instant,
    rings: Vec<Mutex<VecDeque<TraceRecord>>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Tracelog {
    /// A tracelog with `nodes` rings of `capacity_per_node` records each.
    pub fn new(nodes: usize, capacity_per_node: usize) -> Self {
        let nodes = nodes.max(1);
        let capacity = capacity_per_node.max(1);
        Tracelog {
            epoch: Instant::now(),
            rings: (0..nodes).map(|_| Mutex::new(VecDeque::new())).collect(),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of per-node rings.
    pub fn nodes(&self) -> usize {
        self.rings.len()
    }

    /// Ring capacity per node.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records `event` for request `id` on `node` (indices beyond the ring
    /// count clamp to the last ring), stamped now.
    pub fn record(&self, node: usize, id: u64, event: TraceEvent) {
        let t_ns = self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let node = node.min(self.rings.len() - 1);
        let mut ring = self.rings[node].lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(TraceRecord {
            id,
            node,
            t_ns,
            event,
        });
    }

    /// Records overwritten because their ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent `n` records across every node's ring, merged and
    /// sorted by timestamp (oldest of the `n` first).
    pub fn recent(&self, n: usize) -> Vec<TraceRecord> {
        let mut all: Vec<TraceRecord> = Vec::new();
        for ring in &self.rings {
            all.extend(ring.lock().iter().copied());
        }
        all.sort_by_key(|r| r.t_ns);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Plaintext dump of [`recent`](Self::recent)`(n)` for the `/trace`
    /// endpoint: one `t_us=... req=... node=... <event>` line per record.
    pub fn render_text(&self, n: usize) -> String {
        let records = self.recent(n);
        let mut out = String::with_capacity(records.len() * 48 + 64);
        out.push_str(&format!(
            "# tracelog: {} recent of capacity {}x{} (dropped {})\n",
            records.len(),
            self.rings.len(),
            self.capacity,
            self.dropped()
        ));
        for r in records {
            out.push_str(&format!(
                "t_us={} req={} node={} {}\n",
                r.t_ns / 1_000,
                r.id,
                r.node,
                r.event
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_merges_in_time_order() {
        let log = Tracelog::new(2, 8);
        log.record(0, 1, TraceEvent::Admitted);
        log.record(1, 2, TraceEvent::Admitted);
        log.record(0, 1, TraceEvent::Completed);
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);
        assert!(recent.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(recent[0].event, TraceEvent::Admitted);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let log = Tracelog::new(1, 4);
        for id in 0..10u64 {
            log.record(0, id, TraceEvent::Queued);
        }
        assert_eq!(log.dropped(), 6);
        let recent = log.recent(100);
        assert_eq!(recent.len(), 4);
        assert_eq!(recent[0].id, 6, "oldest surviving record");
        assert_eq!(recent[3].id, 9);
    }

    #[test]
    fn recent_truncates_to_n_keeping_newest() {
        let log = Tracelog::new(2, 16);
        for id in 0..8u64 {
            log.record((id % 2) as usize, id, TraceEvent::Queued);
        }
        let recent = log.recent(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[2].id, 7, "newest kept");
    }

    #[test]
    fn out_of_range_node_clamps() {
        let log = Tracelog::new(2, 4);
        log.record(99, 1, TraceEvent::Failed);
        assert_eq!(log.recent(1)[0].node, 1);
    }

    #[test]
    fn render_text_lines() {
        let log = Tracelog::new(1, 4);
        log.record(
            0,
            7,
            TraceEvent::Dispatched {
                path: TracePath::Batched,
            },
        );
        let s = log.render_text(4);
        assert!(s.contains("req=7 node=0 dispatched(path=batched)"), "{s}");
        assert!(s.starts_with("# tracelog:"));
    }
}
