//! Lock-free metric primitives: counters, gauges, and log-bucketed
//! histograms. Every hot-path operation is a handful of relaxed atomic
//! read-modify-writes — no locks, no allocation.

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): every
// atomic here is a monotonic counter or gauge scraped asynchronously —
// Relaxed only; none of them may become a synchronization point.

use crate::percentile::nearest_rank;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// The canonical Prometheus counter: only ever goes up, rendered with a
/// `_total` suffix by convention (the convention is the caller's job — the
/// registry renders whatever name it was registered under).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down, stored as `f64` bits in one
/// atomic word.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0), // 0u64 == 0.0f64 bit pattern
        }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative); a CAS loop, still lock-free.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket `i >= 1` holds values whose bit
/// length is `i`, i.e. `[2^(i-1), 2^i - 1]`; bucket 0 holds exactly `{0}`.
/// 40 buckets cover `0` through `2^38 - 1` ns (~4.6 minutes) with the last
/// bucket absorbing everything larger — ample for request latencies.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log2-bucketed histogram of `u64` samples (nanoseconds by convention).
///
/// One [`AtomicU64`] per bucket plus a sum and a count; recording is three
/// relaxed `fetch_add`s, so the hot path takes no locks and never
/// allocates. Percentiles are derived from the bucket counts
/// ([`Histogram::quantile`]) with one-bucket-width resolution — the
/// property pinned by `tests/properties_obs.rs` is that a derived
/// percentile is an upper bound on the exact sorted percentile, off by at
/// most the width of the bucket the exact sample fell in.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: its bit length, clamped to the last bucket.
fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// The `[lower, upper]` value range of the bucket a sample lands in
/// (public so tests can assert the one-bucket-width percentile bound).
pub fn bucket_bounds(v: u64) -> (u64, u64) {
    let i = bucket_index(v);
    if i == 0 {
        (0, 0)
    } else if i == HISTOGRAM_BUCKETS - 1 {
        (1 << (i - 1), u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index `i` = values of bit length `i`).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive upper value bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// The `pct`-th percentile derived from the bucket counts: the upper
    /// bound of the bucket holding the nearest-rank sample — the **same
    /// rank definition** as the exact [`percentile`](crate::percentile)
    /// helper, so the derived value is always `>=` the exact one and off
    /// by less than that sample's bucket width. `0` before any sample.
    pub fn quantile(&self, pct: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // 0-based rank of the sample an exact sorted percentile would pick.
        let rank = nearest_rank(pct, total as usize) as u64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_bracket_their_sample() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 20, u64::MAX] {
            let (lo, hi) = bucket_bounds(v);
            assert!(lo <= v && v <= hi, "{v}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_counts_and_sum() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
    }

    #[test]
    fn quantile_upper_bounds_exact_percentile() {
        let h = Histogram::new();
        let samples: Vec<u64> = (1..=1000).collect();
        for &v in &samples {
            h.record(v);
        }
        for pct in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = nearest_rank(pct, samples.len());
            let exact = samples[rank]; // already sorted
            let q = h.quantile(pct);
            let (_, hi) = bucket_bounds(exact);
            assert!(q >= exact, "pct {pct}: q {q} < exact {exact}");
            assert_eq!(
                q, hi,
                "pct {pct}: q should be the exact sample's bucket cap"
            );
        }
    }

    #[test]
    fn quantile_empty_is_zero() {
        assert_eq!(Histogram::new().quantile(50.0), 0);
    }
}
