//! The observability endpoint: a hand-rolled HTTP/1.0 server over
//! [`std::net`] (no async runtime — the environment is offline and the
//! serving stack's transport threads are plain threads anyway).
//!
//! One acceptor thread serves short-lived connections sequentially:
//!
//! * `GET /metrics` — Prometheus text exposition (version 0.0.4),
//! * `GET /healthz` — liveness probe (`ok`),
//! * `GET /trace`   — recent request-lifecycle trace records.
//!
//! Responses always carry `Connection: close` + `Content-Length`, so any
//! HTTP client (or `curl`) can scrape it. Shutdown sets a stop flag and
//! pokes the listener with a loopback connection so `accept` returns.

// analyze::policy(publish: stop as obs_stop)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): `stop`
// publishes shutdown to the accept thread — Release store, Acquire loads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A route handler: produces the plaintext body for one scrape.
pub type Handler = Box<dyn Fn() -> String + Send + Sync>;

/// The route table an [`ObsServer`] serves.
pub struct ObsRoutes {
    /// Body of `GET /metrics` (Prometheus text exposition).
    pub metrics: Handler,
    /// Body of `GET /trace` (recent lifecycle records, plaintext).
    pub trace: Handler,
}

impl std::fmt::Debug for ObsRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRoutes").finish_non_exhaustive()
    }
}

/// The metrics/tracing endpoint server thread.
///
/// Binds eagerly (so a taken port fails at construction, not first
/// scrape); [`addr`](ObsServer::addr) reports the actual bound address —
/// bind to port `0` to let the OS pick one, the idiom every test here
/// uses. Dropping the server (or [`shutdown`](ObsServer::shutdown)) stops
/// the acceptor and joins it.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Per-connection read cap: request lines + headers beyond this are
/// rejected (nothing legitimate scrapes with 8 KiB of headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;

impl ObsServer {
    /// Binds `addr` and starts the acceptor thread.
    pub fn bind(addr: SocketAddr, routes: ObsRoutes) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ftgemm-obs-endpoint".to_string())
            .spawn(move || acceptor_loop(&listener, &stop2, &routes))?;
        Ok(ObsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The actually bound address (port resolved if `0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and joins its thread. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, stop: &AtomicBool, routes: &ObsRoutes) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Sequential handling: scrapes are tiny and rare; a slow or
        // malicious client is bounded by the read timeout below.
        let _ = handle_connection(stream, routes);
    }
}

/// Reads the request head (through the blank line), routes, writes one
/// HTTP/1.0 response, closes.
fn handle_connection(mut stream: TcpStream, routes: &ObsRoutes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head_complete(&buf) {
        if buf.len() > MAX_REQUEST_BYTES {
            return respond(&mut stream, 413, "text/plain", "request too large\n");
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(()); // client went away
        }
        buf.extend_from_slice(&chunk[..n]);
    }

    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    // Ignore any query string: `/metrics?foo=1` still scrapes.
    let path = target.split('?').next().unwrap_or_default();

    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    crate::global_counter!(
        "ftgemm_obs_http_requests_total",
        "HTTP requests the observability endpoint handled (any route)."
    )
    .inc();
    match path {
        "/metrics" => {
            crate::global_counter!(
                "ftgemm_obs_scrapes_total",
                "Prometheus scrapes served (GET /metrics)."
            )
            .inc();
            let body = (routes.metrics)();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/trace" => {
            let body = (routes.trace)();
            respond(&mut stream, 200, "text/plain", &body)
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// The request head is complete once the blank line arrives.
fn head_complete(buf: &[u8]) -> bool {
    buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        _ => "Error",
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(code),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> ObsServer {
        ObsServer::bind(
            "127.0.0.1:0".parse().unwrap(),
            ObsRoutes {
                metrics: Box::new(|| {
                    "# HELP ftgemm_t t\n# TYPE ftgemm_t gauge\nftgemm_t 1\n".into()
                }),
                trace: Box::new(|| "# tracelog: empty\n".into()),
            },
        )
        .expect("bind loopback")
    }

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let code: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_routes_and_404() {
        let server = test_server();
        let addr = server.addr();
        assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
        let (code, body) = get(addr, "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("ftgemm_t 1\n"));
        let (code, body) = get(addr, "/trace");
        assert_eq!(code, 200);
        assert!(body.starts_with("# tracelog"));
        assert_eq!(get(addr, "/nope").0, 404);
        // Query strings are ignored for routing.
        assert_eq!(get(addr, "/metrics?x=1").0, 200);
    }

    #[test]
    fn rejects_non_get() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 405"), "{response}");
    }

    #[test]
    fn shutdown_joins_and_unbinds() {
        let mut server = test_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown(); // idempotent
                           // Port released (or at least no longer answered by our loop): a
                           // fresh bind to the same port should eventually succeed.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn drop_stops_the_server() {
        let addr = {
            let server = test_server();
            server.addr()
        };
        // After drop, connects may be refused or reset — but no handler
        // should answer with a 200 body anymore. Tolerate both failure
        // shapes (refused connect vs reset read).
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let _ = write!(stream, "GET /healthz HTTP/1.0\r\n\r\n");
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
            assert!(!response.contains("ok\n"), "server answered after drop");
        }
    }
}
